//! `bench-verify` — validates the machine-readable bench artifacts.
//!
//! The benches emit `BENCH_ingest.json`, `BENCH_mining.json`, and
//! `BENCH_corpus.json` (see `lagalyzer_bench::benchjson`); this binary
//! is the CI gate over them. Three subcommands:
//!
//! * `check FILE...` — structural validation: the file parses, is a
//!   non-empty JSON object, contains no `zz_`/placeholder keys anywhere,
//!   the file's required sections are present, and every speedup field
//!   is a finite number greater than zero.
//! * `gate FILE --min-ingest-speedup X` — `check` plus the performance
//!   gate on the ingest numbers: decode speedups must be monotone
//!   non-regressing along the jobs axis, and the widest row must clear
//!   the threshold. The threshold only applies where the hardware can
//!   express it: when the widest row's `effective_jobs` is below 4 the
//!   parallel section degenerates to the single-worker schedule, and the
//!   gate instead requires the single-core algorithmic floor
//!   ([`SINGLE_CORE_FLOOR`]) so a 1-core runner still verifies that
//!   indexed decode beats the serial reader.
//! * `gate FILE --min-corpus-speedup X` — for the corpus artifact: the
//!   end-to-end (load + mine) corpus-vs-separate-files speedup must be
//!   *strictly above* the threshold, so `--min-corpus-speedup 1.0`
//!   enforces that corpus-wide mining actually beats N separate file
//!   loads rather than merely tying them.
//! * `gate FILE --min-warm-speedup X` — for the warm-analysis artifact:
//!   the rollup-backed warm `analyze` must be strictly more than X times
//!   faster than the cold full-decode pipeline on the same trace, so the
//!   persisted cache keeps paying for its section bytes.
//! * `drift SMOKE COMMITTED` — compares the *section names* of a CI
//!   smoke artifact against the committed full-budget file, so a bench
//!   that silently stops emitting (or starts emitting a new, unreviewed
//!   section) fails the build even though smoke timings themselves are
//!   too noisy to gate on.
//!
//! Exit status: 0 on success, 1 on a failed validation, 2 on usage or
//! I/O errors. No serde in the tree — the parser below is a minimal
//! recursive-descent JSON reader sufficient for our own artifacts.

use std::fmt::Write as _;
use std::process::ExitCode;

/// Decode speedup every host must reach at its widest row, even with a
/// single effective worker: the indexed path skips the checksum pass,
/// the streaming-reader indirection, and the intermediate record vector,
/// which beats the serial reader without any parallelism at all.
const SINGLE_CORE_FLOOR: f64 = 1.15;

/// Effective worker count from which the full `--min-ingest-speedup`
/// threshold applies.
const PARALLEL_GATE_MIN_WORKERS: f64 = 4.0;

/// Relative tolerance for the monotone-speedup check: one step down the
/// jobs axis may lose at most this fraction before it counts as a
/// regression (absorbs timer noise between separately measured rows).
const MONOTONE_TOLERANCE: f64 = 0.95;

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (no serde in the tree).
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_document(text: &'a str) -> Result<Json, String> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("trailing input after JSON value"));
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.fail("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.fail("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in our own
                            // artifacts; map lone surrogates to the
                            // replacement character instead of failing.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.fail("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.fail("bad number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

/// Collects human-readable failures for one file.
#[derive(Default)]
struct Findings {
    problems: Vec<String>,
}

impl Findings {
    fn push(&mut self, msg: String) {
        self.problems.push(msg);
    }
}

/// Keys that mark a section or field as not-real data.
fn is_placeholder_key(key: &str) -> bool {
    let lower = key.to_ascii_lowercase();
    lower.starts_with("zz_")
        || lower.contains("placeholder")
        || lower.contains("todo")
        || lower.contains("fixme")
}

/// Walks the whole value rejecting placeholder keys at any depth.
fn check_no_placeholders(value: &Json, path: &str, out: &mut Findings) {
    match value {
        Json::Obj(fields) => {
            for (key, child) in fields {
                let here = format!("{path}.{key}");
                if is_placeholder_key(key) {
                    out.push(format!("placeholder key `{here}`"));
                }
                check_no_placeholders(child, &here, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                check_no_placeholders(item, &format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// A field that must exist and be a finite number strictly above `min`.
fn require_num(obj: &Json, key: &str, min: f64, path: &str, out: &mut Findings) -> Option<f64> {
    match obj.get(key).and_then(Json::as_num) {
        Some(n) if n.is_finite() && n > min => Some(n),
        Some(n) => {
            out.push(format!("`{path}.{key}` = {n} (must be > {min} and finite)"));
            None
        }
        None => {
            out.push(format!("`{path}.{key}` missing or not a number"));
            None
        }
    }
}

fn require_str(obj: &Json, key: &str, path: &str, out: &mut Findings) {
    match obj.get(key) {
        Some(Json::Str(s)) if !s.is_empty() => {}
        _ => out.push(format!("`{path}.{key}` missing or not a non-empty string")),
    }
}

/// One decode-scaling row as validated out of `indexed_decode_by_jobs`.
struct DecodeRow {
    jobs: f64,
    effective_jobs: f64,
    speedup: f64,
}

/// Validates the `trace_ingest` section; returns the decode rows for the
/// `gate` subcommand.
fn check_ingest(doc: &Json, out: &mut Findings) -> Vec<DecodeRow> {
    let Some(section) = doc.get("trace_ingest") else {
        out.push("required section `trace_ingest` is missing".into());
        return Vec::new();
    };
    let path = "trace_ingest";
    require_str(section, "corpus", path, out);
    require_num(section, "episodes", 0.0, path, out);
    require_num(section, "trace_bytes", 0.0, path, out);
    require_num(section, "available_jobs", 0.0, path, out);
    require_num(section, "serial_read_ns_per_iter", 0.0, path, out);

    let mut rows = Vec::new();
    match section.get("indexed_decode_by_jobs").and_then(Json::as_arr) {
        Some([]) | None => {
            out.push("`trace_ingest.indexed_decode_by_jobs` missing or empty".into());
        }
        Some(items) => {
            for (i, row) in items.iter().enumerate() {
                let row_path = format!("{path}.indexed_decode_by_jobs[{i}]");
                let jobs = require_num(row, "jobs", 0.0, &row_path, out);
                let effective = require_num(row, "effective_jobs", 0.0, &row_path, out);
                require_num(row, "ns_per_iter", 0.0, &row_path, out);
                let speedup = require_num(row, "speedup_vs_serial", 0.0, &row_path, out);
                if let (Some(jobs), Some(effective_jobs), Some(speedup)) =
                    (jobs, effective, speedup)
                {
                    rows.push(DecodeRow {
                        jobs,
                        effective_jobs,
                        speedup,
                    });
                }
            }
        }
    }

    match section.get("filtered_analysis") {
        Some(fa) => {
            let fa_path = format!("{path}.filtered_analysis");
            require_str(fa, "filter", &fa_path, out);
            require_num(fa, "full_decode_ns_per_iter", 0.0, &fa_path, out);
            require_num(fa, "skip_decode_ns_per_iter", 0.0, &fa_path, out);
            require_num(fa, "speedup", 0.0, &fa_path, out);
        }
        None => out.push("`trace_ingest.filtered_analysis` is missing".into()),
    }
    rows
}

/// Validates the `pattern_mining` section of the mining artifact.
fn check_mining(doc: &Json, out: &mut Findings) {
    let Some(section) = doc.get("pattern_mining") else {
        out.push("required section `pattern_mining` is missing".into());
        return;
    };
    let path = "pattern_mining";
    match section.get("apps").and_then(Json::as_arr) {
        Some([]) | None => out.push("`pattern_mining.apps` missing or empty".into()),
        Some(apps) => {
            for (i, app) in apps.iter().enumerate() {
                let app_path = format!("{path}.apps[{i}]");
                require_str(app, "app", &app_path, out);
                require_num(app, "episodes", 0.0, &app_path, out);
                require_num(app, "before_ns_per_iter", 0.0, &app_path, out);
                require_num(app, "after_ns_per_iter", 0.0, &app_path, out);
                require_num(app, "speedup", 0.0, &app_path, out);
            }
        }
    }
    match section.get("total") {
        Some(total) => {
            require_num(total, "speedup", 0.0, &format!("{path}.total"), out);
        }
        None => out.push("`pattern_mining.total` is missing".into()),
    }
}

/// Validates the `hazard_scan` section of the hazards artifact. No gate
/// rides on it — shard-merge cost makes the build speedup
/// hardware-dependent — so only structure is enforced.
fn check_hazards(doc: &Json, out: &mut Findings) {
    let Some(section) = doc.get("hazard_scan") else {
        out.push("required section `hazard_scan` is missing".into());
        return;
    };
    let path = "hazard_scan";
    require_str(section, "corpus", path, out);
    require_num(section, "episodes", 0.0, path, out);
    require_num(section, "available_jobs", 0.0, path, out);
    require_num(section, "waits", 0.0, path, out);
    require_num(section, "locks", 0.0, path, out);
    match section.get("build") {
        Some(pair) => {
            let pair_path = format!("{path}.build");
            require_num(pair, "serial_ns_per_iter", 0.0, &pair_path, out);
            require_num(pair, "sharded_ns_per_iter", 0.0, &pair_path, out);
            require_num(pair, "speedup", 0.0, &pair_path, out);
        }
        None => out.push(format!("`{path}.build` is missing")),
    }
}

/// Validates the `analysis_warm` section of the warm-analysis artifact
/// and returns the warm-over-cold speedup for the `gate` subcommand.
fn check_warm(doc: &Json, out: &mut Findings) -> Option<f64> {
    let Some(section) = doc.get("analysis_warm") else {
        out.push("required section `analysis_warm` is missing".into());
        return None;
    };
    let path = "analysis_warm";
    require_str(section, "corpus", path, out);
    require_num(section, "episodes", 0.0, path, out);
    require_num(section, "available_jobs", 0.0, path, out);
    require_num(section, "trace_bytes", 0.0, path, out);
    require_num(section, "trace_bytes_with_rollup", 0.0, path, out);
    match section.get("analyze") {
        Some(pair) => {
            let pair_path = format!("{path}.analyze");
            require_num(pair, "cold_ns_per_iter", 0.0, &pair_path, out);
            require_num(pair, "warm_ns_per_iter", 0.0, &pair_path, out);
            require_num(pair, "speedup", 0.0, &pair_path, out)
        }
        None => {
            out.push(format!("`{path}.analyze` is missing"));
            None
        }
    }
}

/// Validates the `corpus_ingest` section of the corpus artifact and
/// returns the end-to-end speedup for the `gate` subcommand.
fn check_corpus(doc: &Json, out: &mut Findings) -> Option<f64> {
    let Some(section) = doc.get("corpus_ingest") else {
        out.push("required section `corpus_ingest` is missing".into());
        return None;
    };
    let path = "corpus_ingest";
    require_str(section, "corpus", path, out);
    require_num(section, "sessions", 0.0, path, out);
    require_num(section, "episodes", 0.0, path, out);
    require_num(section, "available_jobs", 0.0, path, out);
    require_num(section, "separate_bytes", 0.0, path, out);
    require_num(section, "corpus_bytes", 0.0, path, out);
    let mut end_to_end = None;
    for key in ["load_only", "load_and_mine"] {
        match section.get(key) {
            Some(pair) => {
                let pair_path = format!("{path}.{key}");
                require_num(pair, "separate_files_ns_per_iter", 0.0, &pair_path, out);
                require_num(pair, "corpus_ns_per_iter", 0.0, &pair_path, out);
                let speedup = require_num(pair, "speedup", 0.0, &pair_path, out);
                if key == "load_and_mine" {
                    end_to_end = speedup;
                }
            }
            None => out.push(format!("`{path}.{key}` is missing")),
        }
    }
    end_to_end
}

/// Which artifact a path holds, by file name. `corpus` is matched before
/// `ingest` so that corpus-flavoured names never fall into the
/// trace-ingest rules.
fn artifact_kind(path: &str) -> Option<&'static str> {
    let name = path.rsplit('/').next().unwrap_or(path);
    if name.contains("hazard") {
        Some("hazards")
    } else if name.contains("corpus") {
        Some("corpus")
    } else if name.contains("warm") {
        Some("warm")
    } else if name.contains("ingest") {
        Some("ingest")
    } else if name.contains("mining") {
        Some("mining")
    } else {
        None
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    let doc = Parser::parse_document(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    match &doc {
        Json::Obj(fields) if !fields.is_empty() => Ok(doc),
        Json::Obj(_) => Err(format!("{path}: top-level object is empty")),
        _ => Err(format!("{path}: top level is not a JSON object")),
    }
}

/// Everything `check` learned about one file: the problems found, plus
/// the numbers the `gate` subcommand gates on (each present only for
/// the artifact kind that carries them).
struct Checked {
    findings: Findings,
    decode_rows: Vec<DecodeRow>,
    corpus_speedup: Option<f64>,
    warm_speedup: Option<f64>,
}

/// The `check` validation for one already-parsed file.
fn check_doc(path: &str, doc: &Json) -> Checked {
    let mut findings = Findings::default();
    check_no_placeholders(doc, "", &mut findings);
    let mut decode_rows = Vec::new();
    let mut corpus_speedup = None;
    let mut warm_speedup = None;
    match artifact_kind(path) {
        Some("ingest") => decode_rows = check_ingest(doc, &mut findings),
        Some("mining") => check_mining(doc, &mut findings),
        Some("corpus") => corpus_speedup = check_corpus(doc, &mut findings),
        Some("warm") => warm_speedup = check_warm(doc, &mut findings),
        Some("hazards") => check_hazards(doc, &mut findings),
        _ => {}
    }
    Checked {
        findings,
        decode_rows,
        corpus_speedup,
        warm_speedup,
    }
}

fn report(path: &str, findings: &Findings) -> bool {
    if findings.problems.is_empty() {
        eprintln!("bench-verify: {path}: ok");
        true
    } else {
        let mut msg = format!(
            "bench-verify: {path}: {} problem(s)\n",
            findings.problems.len()
        );
        for p in &findings.problems {
            let _ = writeln!(msg, "  - {p}");
        }
        eprint!("{msg}");
        false
    }
}

fn cmd_check(paths: &[String]) -> Result<ExitCode, String> {
    if paths.is_empty() {
        return Err("check: at least one FILE required".into());
    }
    let mut ok = true;
    for path in paths {
        let doc = load(path)?;
        ok &= report(path, &check_doc(path, &doc).findings);
    }
    Ok(if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// The `gate` performance rules over validated decode rows.
fn gate_rows(rows: &[DecodeRow], min_speedup: f64, out: &mut Findings) {
    let mut sorted: Vec<&DecodeRow> = rows.iter().collect();
    sorted.sort_by(|a, b| a.jobs.total_cmp(&b.jobs));
    for pair in sorted.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        if hi.speedup < lo.speedup * MONOTONE_TOLERANCE {
            out.push(format!(
                "decode speedup regresses along the jobs axis: jobs={} gives {:.3}x but \
                 jobs={} gives {:.3}x",
                lo.jobs, lo.speedup, hi.jobs, hi.speedup
            ));
        }
    }
    let Some(widest) = sorted.last() else {
        out.push("no decode rows to gate on".into());
        return;
    };
    if widest.effective_jobs >= PARALLEL_GATE_MIN_WORKERS {
        if widest.speedup < min_speedup {
            out.push(format!(
                "jobs={} (effective {}) speedup {:.3}x is below the gate {min_speedup}x",
                widest.jobs, widest.effective_jobs, widest.speedup
            ));
        }
    } else {
        // Too few workers to express parallel scaling; hold the
        // single-core algorithmic floor instead (see module docs).
        eprintln!(
            "bench-verify: widest row has only {} effective worker(s); applying the \
             single-core floor {SINGLE_CORE_FLOOR}x instead of the parallel gate \
             {min_speedup}x",
            widest.effective_jobs
        );
        if widest.speedup < SINGLE_CORE_FLOOR {
            out.push(format!(
                "jobs={} (effective {}) speedup {:.3}x is below the single-core floor \
                 {SINGLE_CORE_FLOOR}x",
                widest.jobs, widest.effective_jobs, widest.speedup
            ));
        }
    }
}

/// The `gate` rule for the corpus artifact: strictly above threshold,
/// so a tie with the per-file path does not pass (see module docs).
fn gate_corpus(speedup: Option<f64>, min_speedup: f64, out: &mut Findings) {
    match speedup {
        Some(s) if s > min_speedup => {}
        Some(s) => out.push(format!(
            "corpus load+mine speedup {s:.3}x is not above the gate {min_speedup}x"
        )),
        None => out.push("no corpus speedup to gate on".into()),
    }
}

/// The `gate` rule for the warm-analysis artifact: the warm path must be
/// strictly more than `min_speedup` times faster than the cold decode.
fn gate_warm(speedup: Option<f64>, min_speedup: f64, out: &mut Findings) {
    match speedup {
        Some(s) if s > min_speedup => {}
        Some(s) => out.push(format!(
            "warm analyze speedup {s:.3}x is not above the gate {min_speedup}x"
        )),
        None => out.push("no warm-analysis speedup to gate on".into()),
    }
}

fn cmd_gate(paths: &[String]) -> Result<ExitCode, String> {
    let mut file = None;
    let mut min_ingest = None;
    let mut min_corpus = None;
    let mut min_warm = None;
    let mut iter = paths.iter();
    while let Some(arg) = iter.next() {
        if arg == "--min-ingest-speedup"
            || arg == "--min-corpus-speedup"
            || arg == "--min-warm-speedup"
        {
            let v = iter.next().ok_or(format!("gate: {arg} needs a value"))?;
            let parsed = v
                .parse::<f64>()
                .map_err(|_| format!("gate: bad speedup `{v}`"))?;
            match arg.as_str() {
                "--min-ingest-speedup" => min_ingest = Some(parsed),
                "--min-corpus-speedup" => min_corpus = Some(parsed),
                _ => min_warm = Some(parsed),
            }
        } else if file.is_none() {
            file = Some(arg.clone());
        } else {
            return Err(format!("gate: unexpected argument `{arg}`"));
        }
    }
    let file = file.ok_or("gate: FILE required")?;
    let doc = load(&file)?;
    let mut checked = check_doc(&file, &doc);
    match artifact_kind(&file) {
        Some("ingest") => {
            let min = min_ingest.ok_or("gate: --min-ingest-speedup required")?;
            gate_rows(&checked.decode_rows, min, &mut checked.findings);
        }
        Some("corpus") => {
            let min = min_corpus.ok_or("gate: --min-corpus-speedup required")?;
            gate_corpus(checked.corpus_speedup, min, &mut checked.findings);
        }
        Some("warm") => {
            let min = min_warm.ok_or("gate: --min-warm-speedup required")?;
            gate_warm(checked.warm_speedup, min, &mut checked.findings);
        }
        _ => return Err(format!("gate: `{file}` is not a gateable artifact")),
    }
    Ok(if report(&file, &checked.findings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn section_names(doc: &Json) -> Vec<String> {
    match doc {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
        _ => Vec::new(),
    }
}

fn cmd_drift(paths: &[String]) -> Result<ExitCode, String> {
    let [smoke, committed] = paths else {
        return Err("drift: exactly two files required (SMOKE COMMITTED)".into());
    };
    let smoke_doc = load(smoke)?;
    let committed_doc = load(committed)?;
    let mut smoke_names = section_names(&smoke_doc);
    let mut committed_names = section_names(&committed_doc);
    smoke_names.sort();
    committed_names.sort();
    let mut findings = Findings::default();
    for name in &committed_names {
        if !smoke_names.contains(name) {
            findings.push(format!(
                "section `{name}` is in {committed} but the smoke run did not emit it"
            ));
        }
    }
    for name in &smoke_names {
        if !committed_names.contains(name) {
            findings.push(format!(
                "smoke run emitted section `{name}` that {committed} does not have — \
                 refresh the committed artifact"
            ));
        }
    }
    Ok(if report(&format!("{smoke} vs {committed}"), &findings) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

const USAGE: &str = "usage: bench-verify <check FILE...|gate FILE \
     (--min-ingest-speedup X|--min-corpus-speedup X|--min-warm-speedup X)|\
     drift SMOKE COMMITTED>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "check" => cmd_check(rest),
        Some((cmd, rest)) if cmd == "gate" => cmd_gate(rest),
        Some((cmd, rest)) if cmd == "drift" => cmd_drift(rest),
        _ => Err(USAGE.into()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bench-verify: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Json {
        Parser::parse_document(text).unwrap()
    }

    #[test]
    fn parser_round_trips_shapes() {
        let doc = parse(r#"{"a": 1.5, "b": [true, null, "x\ny"], "c": {"d": -2e3}, "e": ""}"#);
        assert_eq!(doc.get("a").unwrap().as_num(), Some(1.5));
        let b = doc.get("b").unwrap().as_arr().unwrap();
        assert_eq!(b[0], Json::Bool(true));
        assert_eq!(b[1], Json::Null);
        assert_eq!(b[2], Json::Str("x\ny".into()));
        assert_eq!(
            doc.get("c").unwrap().get("d").unwrap().as_num(),
            Some(-2000.0)
        );
        assert_eq!(doc.get("e").unwrap(), &Json::Str(String::new()));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Parser::parse_document("{").is_err());
        assert!(Parser::parse_document("[1, 2").is_err());
        assert!(Parser::parse_document("{\"a\": 1} extra").is_err());
        assert!(Parser::parse_document("nul").is_err());
    }

    fn ingest_doc(rows: &str) -> String {
        format!(
            r#"{{"trace_ingest": {{
                "corpus": "Euclide-3x", "episodes": 29000, "trace_bytes": 5333478,
                "available_jobs": 8, "serial_read_ns_per_iter": 40000000.0,
                "indexed_decode_by_jobs": [{rows}],
                "filtered_analysis": {{"filter": "min-lag 100ms",
                    "full_decode_ns_per_iter": 50000000.0,
                    "skip_decode_ns_per_iter": 1000000.0, "speedup": 50.0}}
            }}}}"#
        )
    }

    fn row(jobs: u32, eff: u32, speedup: f64) -> String {
        format!(
            r#"{{"jobs": {jobs}, "effective_jobs": {eff}, "ns_per_iter": 1000.0,
                "speedup_vs_serial": {speedup}}}"#
        )
    }

    #[test]
    fn check_accepts_complete_ingest() {
        let text = ingest_doc(&[row(1, 1, 1.4), row(8, 8, 3.1)].join(","));
        let doc = Parser::parse_document(&text).unwrap();
        let checked = check_doc("BENCH_ingest.json", &doc);
        assert!(
            checked.findings.problems.is_empty(),
            "{:?}",
            checked.findings.problems
        );
        assert_eq!(checked.decode_rows.len(), 2);
    }

    #[test]
    fn check_rejects_placeholder_keys_anywhere() {
        let doc = parse(r#"{"trace_ingest": {"zz_placeholder": 1}, "zz_x": 2}"#);
        let findings = check_doc("BENCH_ingest.json", &doc).findings;
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("placeholder key `.zz_x`")));
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("trace_ingest.zz_placeholder")));
    }

    #[test]
    fn check_rejects_missing_sections_and_bad_numbers() {
        let doc = parse(r#"{"something_else": {}}"#);
        let findings = check_doc("BENCH_ingest.json", &doc).findings;
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("`trace_ingest` is missing")));

        let text = ingest_doc(&row(8, 8, 0.0));
        let doc = Parser::parse_document(&text).unwrap();
        let findings = check_doc("BENCH_ingest.json", &doc).findings;
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("speedup_vs_serial")));
    }

    fn corpus_doc(load_speedup: f64, mine_speedup: f64) -> String {
        format!(
            r#"{{"corpus_ingest": {{
                "corpus": "CrosswordSage-fleet", "sessions": 16, "episodes": 6400,
                "budget_ms": 500, "available_jobs": 1,
                "separate_bytes": 3000000, "corpus_bytes": 2800000,
                "load_only": {{"separate_files_ns_per_iter": 2000000.0,
                    "corpus_ns_per_iter": 1500000.0, "speedup": {load_speedup}}},
                "load_and_mine": {{"separate_files_ns_per_iter": 9000000.0,
                    "corpus_ns_per_iter": 8000000.0, "speedup": {mine_speedup}}}
            }}}}"#
        )
    }

    #[test]
    fn check_accepts_complete_corpus_and_extracts_speedup() {
        let doc = Parser::parse_document(&corpus_doc(1.3, 1.12)).unwrap();
        let checked = check_doc("BENCH_corpus.json", &doc);
        assert!(
            checked.findings.problems.is_empty(),
            "{:?}",
            checked.findings.problems
        );
        assert_eq!(checked.corpus_speedup, Some(1.12));
    }

    #[test]
    fn check_rejects_incomplete_corpus() {
        let doc = parse(r#"{"something_else": {}}"#);
        let findings = check_doc("BENCH_corpus.json", &doc).findings;
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("`corpus_ingest` is missing")));

        let doc = parse(r#"{"corpus_ingest": {"corpus": "x", "load_only": {}}}"#);
        let findings = check_doc("BENCH_corpus.json", &doc).findings;
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("load_and_mine` is missing")));
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("load_only.speedup")));
    }

    #[test]
    fn corpus_gate_requires_strictly_above_threshold() {
        let mut findings = Findings::default();
        gate_corpus(Some(1.08), 1.0, &mut findings);
        assert!(findings.problems.is_empty(), "{:?}", findings.problems);

        // A tie is not a win: exactly 1.0x fails the default gate.
        let mut findings = Findings::default();
        gate_corpus(Some(1.0), 1.0, &mut findings);
        assert!(findings.problems.iter().any(|p| p.contains("not above")));

        let mut findings = Findings::default();
        gate_corpus(None, 1.0, &mut findings);
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("no corpus speedup")));
    }

    #[test]
    fn corpus_names_never_fall_into_ingest_rules() {
        assert_eq!(artifact_kind("BENCH_corpus.json"), Some("corpus"));
        assert_eq!(
            artifact_kind("target/smoke/BENCH_corpus.json"),
            Some("corpus")
        );
        assert_eq!(artifact_kind("corpus_ingest.json"), Some("corpus"));
        assert_eq!(artifact_kind("BENCH_ingest.json"), Some("ingest"));
        assert_eq!(artifact_kind("BENCH_mining.json"), Some("mining"));
        assert_eq!(artifact_kind("BENCH_warm.json"), Some("warm"));
        assert_eq!(artifact_kind("target/smoke/BENCH_warm.json"), Some("warm"));
        assert_eq!(artifact_kind("BENCH_hazards.json"), Some("hazards"));
        assert_eq!(
            artifact_kind("target/smoke/BENCH_hazards.json"),
            Some("hazards")
        );
        assert_eq!(artifact_kind("notes.json"), None);
    }

    #[test]
    fn check_validates_hazards_structure() {
        let doc = parse(
            r#"{"hazard_scan": {
                "corpus": "jEdit-hazards", "episodes": 1200, "budget_ms": 500,
                "available_jobs": 4, "waits": 900, "locks": 5, "held_edges": 7,
                "build": {"serial_ns_per_iter": 9000000.0,
                    "sharded_ns_per_iter": 3000000.0, "speedup": 3.0}
            }}"#,
        );
        let checked = check_doc("BENCH_hazards.json", &doc);
        assert!(
            checked.findings.problems.is_empty(),
            "{:?}",
            checked.findings.problems
        );

        let findings = check_doc("BENCH_hazards.json", &parse(r#"{"other": {}}"#)).findings;
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("`hazard_scan` is missing")));

        let doc = parse(r#"{"hazard_scan": {"corpus": "x"}}"#);
        let findings = check_doc("BENCH_hazards.json", &doc).findings;
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("build` is missing")));
        assert!(findings.problems.iter().any(|p| p.contains("waits")));
    }

    fn warm_doc(speedup: f64) -> String {
        format!(
            r#"{{"analysis_warm": {{
                "corpus": "jEdit-warm", "episodes": 1200, "budget_ms": 500,
                "available_jobs": 1, "trace_bytes": 1583639,
                "trace_bytes_with_rollup": 1645885,
                "analyze": {{"cold_ns_per_iter": 12000000.0,
                    "warm_ns_per_iter": 3200000.0, "speedup": {speedup}}}
            }}}}"#
        )
    }

    #[test]
    fn check_accepts_complete_warm_and_extracts_speedup() {
        let doc = Parser::parse_document(&warm_doc(3.75)).unwrap();
        let checked = check_doc("BENCH_warm.json", &doc);
        assert!(
            checked.findings.problems.is_empty(),
            "{:?}",
            checked.findings.problems
        );
        assert_eq!(checked.warm_speedup, Some(3.75));
    }

    #[test]
    fn check_rejects_incomplete_warm() {
        let doc = parse(r#"{"something_else": {}}"#);
        let findings = check_doc("BENCH_warm.json", &doc).findings;
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("`analysis_warm` is missing")));

        let doc = parse(r#"{"analysis_warm": {"corpus": "x"}}"#);
        let findings = check_doc("BENCH_warm.json", &doc).findings;
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("analyze` is missing")));
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("trace_bytes_with_rollup")));
    }

    #[test]
    fn warm_gate_requires_strictly_above_threshold() {
        let mut findings = Findings::default();
        gate_warm(Some(3.6), 3.0, &mut findings);
        assert!(findings.problems.is_empty(), "{:?}", findings.problems);

        let mut findings = Findings::default();
        gate_warm(Some(3.0), 3.0, &mut findings);
        assert!(findings.problems.iter().any(|p| p.contains("not above")));

        let mut findings = Findings::default();
        gate_warm(None, 3.0, &mut findings);
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("no warm-analysis speedup")));
    }

    #[test]
    fn gate_applies_threshold_with_enough_workers() {
        let rows = vec![
            DecodeRow {
                jobs: 1.0,
                effective_jobs: 1.0,
                speedup: 1.4,
            },
            DecodeRow {
                jobs: 8.0,
                effective_jobs: 8.0,
                speedup: 2.0,
            },
        ];
        let mut findings = Findings::default();
        gate_rows(&rows, 2.5, &mut findings);
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("below the gate")));

        let rows = vec![
            DecodeRow {
                jobs: 1.0,
                effective_jobs: 1.0,
                speedup: 1.4,
            },
            DecodeRow {
                jobs: 8.0,
                effective_jobs: 8.0,
                speedup: 2.6,
            },
        ];
        let mut findings = Findings::default();
        gate_rows(&rows, 2.5, &mut findings);
        assert!(findings.problems.is_empty(), "{:?}", findings.problems);
    }

    #[test]
    fn gate_holds_single_core_floor_without_parallelism() {
        let rows = vec![
            DecodeRow {
                jobs: 1.0,
                effective_jobs: 1.0,
                speedup: 1.5,
            },
            DecodeRow {
                jobs: 8.0,
                effective_jobs: 1.0,
                speedup: 1.5,
            },
        ];
        let mut findings = Findings::default();
        gate_rows(&rows, 2.5, &mut findings);
        assert!(findings.problems.is_empty(), "{:?}", findings.problems);

        let rows = vec![DecodeRow {
            jobs: 8.0,
            effective_jobs: 1.0,
            speedup: 1.0,
        }];
        let mut findings = Findings::default();
        gate_rows(&rows, 2.5, &mut findings);
        assert!(findings
            .problems
            .iter()
            .any(|p| p.contains("single-core floor")));
    }

    #[test]
    fn gate_rejects_regressions_along_the_jobs_axis() {
        let rows = vec![
            DecodeRow {
                jobs: 1.0,
                effective_jobs: 1.0,
                speedup: 2.0,
            },
            DecodeRow {
                jobs: 2.0,
                effective_jobs: 2.0,
                speedup: 1.2,
            },
            DecodeRow {
                jobs: 8.0,
                effective_jobs: 8.0,
                speedup: 2.6,
            },
        ];
        let mut findings = Findings::default();
        gate_rows(&rows, 2.5, &mut findings);
        assert!(findings.problems.iter().any(|p| p.contains("regresses")));
    }

    #[test]
    fn mining_checks_apps_and_total() {
        let doc = parse(
            r#"{"pattern_mining": {
                "apps": [{"app": "Jmol", "episodes": 100, "before_ns_per_iter": 10.0,
                          "after_ns_per_iter": 5.0, "speedup": 2.0}],
                "total": {"speedup": 2.0}
            }}"#,
        );
        let findings = check_doc("BENCH_mining.json", &doc).findings;
        assert!(findings.problems.is_empty(), "{:?}", findings.problems);

        let doc = parse(r#"{"pattern_mining": {"apps": [], "total": {}}}"#);
        let findings = check_doc("BENCH_mining.json", &doc).findings;
        assert!(!findings.problems.is_empty());
    }
}
