//! Regenerates Fig 5: triggers of (perceptible) episodes.

use lagalyzer_bench::{full_study, save_figure};
use lagalyzer_report::figures;

fn main() {
    let study = full_study();
    for perceptible in [false, true] {
        let fig = figures::fig5(&study, perceptible);
        println!("== {} ==", fig.id);
        print!("{}", fig.text);
        save_figure(&fig);
    }
    let n = study.apps.len() as f64;
    let mut mean = [0.0f64; 4];
    for app in &study.apps {
        let fr = app.aggregate.trigger_perceptible.fractions();
        for (m, f) in mean.iter_mut().zip(fr) {
            *m += f / n;
        }
    }
    println!("\npaper (perceptible means): 40% input, 47% output, 7% async");
    println!(
        "measured: {:.0}% input, {:.0}% output, {:.0}% async, {:.0}% unspecified",
        mean[0] * 100.0,
        mean[1] * 100.0,
        mean[2] * 100.0,
        mean[3] * 100.0
    );
}
