//! Regenerates Fig 8: synchronization and sleep during (perceptible)
//! episodes.

use lagalyzer_bench::{full_study, save_figure};
use lagalyzer_report::figures;

fn main() {
    let study = full_study();
    for perceptible in [false, true] {
        let fig = figures::fig8(&study, perceptible);
        println!("== {} ==", fig.id);
        print!("{}", fig.text);
        save_figure(&fig);
    }
    let by_name = |name: &str| {
        study
            .apps
            .iter()
            .find(|a| a.aggregate.name == name)
            .map(|a| a.aggregate.causes_perceptible)
            .expect("app present")
    };
    println!("\npaper: jEdit >25% waiting; FreeMind 12% blocked; Euclide >60% sleeping");
    println!(
        "measured: jEdit {:.0}% waiting; FreeMind {:.0}% blocked; Euclide {:.0}% sleeping",
        by_name("JEdit").waiting * 100.0,
        by_name("FreeMind").blocked * 100.0,
        by_name("Euclide").sleeping * 100.0
    );
}
