//! Regenerates Fig 2: a GanttProject episode with deeply nested paint
//! intervals.

use lagalyzer_bench::experiments_dir;
use lagalyzer_sim::scenarios;
use lagalyzer_viz::ascii::ascii_sketch;
use lagalyzer_viz::sketch::{render_sketch, SketchOptions};

fn main() {
    let scenario = scenarios::figure2();
    let svg = render_sketch(
        &scenario.episode,
        &scenario.symbols,
        &SketchOptions::default(),
    );
    let path = experiments_dir().join("fig2_sketch.svg");
    std::fs::write(&path, svg).expect("write fig2 svg");
    println!(
        "{}",
        ascii_sketch(&scenario.episode, &scenario.symbols, 100)
    );
    println!(
        "tree size: {} intervals, depth {}",
        scenario.episode.tree().len(),
        scenario.episode.tree().max_depth()
    );
    println!("saved {}", path.display());
}
