//! Regenerates Fig 4: long-latency episodes in patterns
//! (always / sometimes / once / never).

use lagalyzer_bench::{full_study, save_figure};
use lagalyzer_report::figures;

fn main() {
    let study = full_study();
    let fig = figures::fig4(&study);
    print!("{}", fig.text);
    save_figure(&fig);

    let mut consistent = 0.0;
    let mut ever = 0.0;
    for app in &study.apps {
        consistent += app.aggregate.occurrence.consistent_fraction();
        ever += app.aggregate.occurrence.ever_perceptible_fraction();
    }
    let n = study.apps.len() as f64;
    println!("\npaper: 96% of patterns consistently slow or fast; 22% ever perceptible");
    println!(
        "measured: {:.0}% consistent; {:.0}% ever perceptible",
        consistent / n * 100.0,
        ever / n * 100.0
    );
}
