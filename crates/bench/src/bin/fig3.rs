//! Regenerates Fig 3: cumulative distribution of episodes into patterns.

use lagalyzer_bench::{full_study, save_figure};
use lagalyzer_report::figures;

fn main() {
    let study = full_study();
    let fig = figures::fig3(&study);
    print!("{}", fig.text);
    save_figure(&fig);
    // The Pareto observation the paper makes.
    let mut worst: f64 = 1.0;
    for app in &study.apps {
        let coverage = app
            .aggregate
            .coverage_curve
            .iter()
            .filter(|(x, _)| *x <= 0.2 + 1e-9)
            .map(|(_, y)| *y)
            .next_back()
            .unwrap_or(0.0);
        worst = worst.min(coverage);
    }
    println!("\npaper: ~80% of episodes covered by 20% of patterns");
    println!(
        "measured: worst-app coverage of top 20% patterns = {:.0}%",
        worst * 100.0
    );
}
