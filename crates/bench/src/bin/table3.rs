//! Regenerates Table III (overall statistics) from four simulated sessions
//! per application, and prints the paper-vs-measured comparison.

use lagalyzer_bench::{experiments_dir, full_study};
use lagalyzer_report::{compare, table3};

fn main() {
    eprintln!("simulating 14 applications x 4 sessions ...");
    let study = full_study();
    let table = table3::render(&study);
    println!("{table}");
    std::fs::write(experiments_dir().join("table3.txt"), &table).expect("write table3");

    let comparisons = compare::table3_comparisons(&study);
    println!("{}", compare::render(&comparisons));
    println!("{}", compare::summary(&comparisons, 0.15));
    println!("{}", compare::summary(&comparisons, 0.50));
}
