//! Perturbation study — the paper's own stated future work (§V: "We plan
//! to study the perturbation of LiLa in future work").
//!
//! Sweeps the tracer's per-event instrumentation cost and reports how the
//! headline statistics drift: with expensive instrumentation, episodes
//! stretch, previously imperceptible episodes cross the 100 ms threshold,
//! and the characterization starts describing the tracer instead of the
//! application.

use lagalyzer_core::prelude::*;
use lagalyzer_model::DurationNs;
use lagalyzer_sim::{apps, runner};

fn main() {
    println!(
        "{:<14} {:>14} {:>10} {:>12} {:>10}",
        "app", "overhead/event", "traced", "perceptible", "In-Eps [%]"
    );
    for profile in [apps::gantt_project(), apps::jedit()] {
        for overhead_us in [0u64, 20, 100, 500, 2_000] {
            let trace = runner::simulate_session_perturbed(
                &profile,
                0,
                lagalyzer_bench::SEED,
                DurationNs::from_micros(overhead_us),
            );
            let session = AnalysisSession::new(trace, AnalysisConfig::default());
            let stats = SessionStats::compute(&session);
            println!(
                "{:<14} {:>11} us {:>10} {:>12} {:>10.1}",
                profile.name,
                overhead_us,
                stats.traced_count,
                stats.perceptible_count,
                stats.in_episode_fraction * 100.0
            );
        }
        println!();
    }
    println!("reading: LiLa-class instrumentation (~20 us/event) perturbs the statistics");
    println!("by a few percent; naive tracing (>=500 us/event) dominates the measurement.");
}
