//! Ablation: the tracer-side filter threshold (3 ms in the paper).
//!
//! Sweeps the analysis-relevant consequences of the filter: how many
//! episodes survive, how many patterns are mined, and how the trigger
//! classification's "unspecified" share grows as child intervals fall
//! below the threshold.

use lagalyzer_core::prelude::*;
use lagalyzer_core::trigger::TriggerBreakdown;
use lagalyzer_model::DurationNs;
use lagalyzer_sim::{apps, runner};
use lagalyzer_trace::TraceFilter;

fn main() {
    let profile = apps::swing_set();
    let trace = runner::simulate_session(&profile, 0, lagalyzer_bench::SEED);
    println!("app: {} (session 0)", profile.name);
    println!(
        "{:>12} {:>10} {:>10} {:>12}",
        "filter [ms]", "episodes", "patterns", "unspec [%]"
    );
    for threshold_ms in [0u64, 1, 3, 10, 30, 100] {
        // Re-apply a stricter filter on top of the recorded trace, exactly
        // what a tracer with that threshold would have kept.
        let mut filter = TraceFilter::new(DurationNs::from_millis(threshold_ms));
        let kept: Vec<_> = trace
            .episodes()
            .iter()
            .filter_map(|e| filter.admit(e.clone()))
            .collect();
        let meta = trace.meta().clone();
        let mut b = lagalyzer_model::SessionTraceBuilder::new(meta, trace.symbols().clone());
        for e in &kept {
            b.push_episode(e.clone()).expect("order preserved");
        }
        let session = AnalysisSession::new(b.finish(), AnalysisConfig::default());
        let patterns = session.mine_patterns();
        let trig = TriggerBreakdown::of_all(&session);
        println!(
            "{:>12} {:>10} {:>10} {:>12.1}",
            threshold_ms,
            kept.len(),
            patterns.len(),
            trig.fractions()[3] * 100.0
        );
    }
}
