//! Ablation: the perceptibility threshold.
//!
//! The paper fixes 100 ms, citing Shneiderman; its intro also cites
//! MacKenzie/Ware (performance degrades up to 225 ms) and
//! Dabrowski/Munson (150 ms keyboard, 195 ms mouse). This sweep shows how
//! the headline statistics move across exactly those literature values.

use lagalyzer_core::occurrence::OccurrenceBreakdown;
use lagalyzer_core::prelude::*;
use lagalyzer_model::DurationNs;
use lagalyzer_sim::{apps, runner};

fn main() {
    let profiles = [apps::jmol(), apps::gantt_project(), apps::jedit()];
    let traces: Vec<_> = profiles
        .iter()
        .map(|p| {
            (
                p.name.clone(),
                runner::simulate_session(p, 0, lagalyzer_bench::SEED),
            )
        })
        .collect();

    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>14}",
        "app", "thr [ms]", "perceptible", "long/min", "ever-perc pats"
    );
    for (name, trace) in &traces {
        for threshold_ms in [50u64, 100, 150, 195, 225] {
            let session = AnalysisSession::new(
                trace.clone(),
                AnalysisConfig {
                    perceptible_threshold: DurationNs::from_millis(threshold_ms),
                },
            );
            let stats = SessionStats::compute(&session);
            let occ = OccurrenceBreakdown::of(&session.mine_patterns());
            println!(
                "{:<14} {:>10} {:>12} {:>10.0} {:>13.0}%",
                name,
                threshold_ms,
                stats.perceptible_count,
                stats.long_per_minute,
                occ.ever_perceptible_fraction() * 100.0
            );
        }
        println!();
    }
    println!("note: pattern structure (Dist, #Eps) is threshold-independent by design —");
    println!("equivalence ignores timing, so only the perceptibility columns move.");
}
