//! Checks the paper's §IV performance claim: the fully automated analysis
//! of about 7.5 hours of sessions (~250,000 episodes) took 15 minutes
//! including graph generation. This binary runs the same-scale analysis
//! (14 apps x 4 sessions, every table and figure) and reports wall time.

use std::time::Instant;

use lagalyzer_bench::full_study;
use lagalyzer_core::prelude::*;
use lagalyzer_report::{figures, table3};
use lagalyzer_sim::{apps, runner};

fn main() {
    // Simulation is our stand-in for the (already existing) traces, so it
    // is excluded from the analysis timing.
    eprintln!("simulating traces (excluded from timing) ...");
    let mut sessions = Vec::new();
    for profile in apps::standard_suite() {
        for i in 0..4 {
            sessions.push(runner::simulate_session(&profile, i, lagalyzer_bench::SEED));
        }
    }
    let traced: usize = sessions.iter().map(|s| s.episodes().len()).sum();
    let hours: f64 = sessions
        .iter()
        .map(|s| s.meta().end_to_end.as_secs_f64())
        .sum::<f64>()
        / 3600.0;

    eprintln!("analyzing ...");
    let start = Instant::now();
    let mut pattern_total = 0usize;
    for trace in sessions {
        let session = AnalysisSession::new(trace, AnalysisConfig::default());
        let _stats = SessionStats::compute(&session);
        pattern_total += session.mine_patterns().len();
    }
    // Include full table + figure generation, as the paper's claim does.
    let study = full_study();
    let _ = table3::render(&study);
    let _ = figures::fig3(&study);
    let _ = figures::fig4(&study);
    let _ = figures::fig5(&study, true);
    let _ = figures::fig6(&study, true);
    let _ = figures::fig7(&study, true);
    let _ = figures::fig8(&study, true);
    let elapsed = start.elapsed();

    println!("paper: ~7.5 h of sessions, ~250,000 episodes analyzed in 15 min");
    println!(
        "measured: {hours:.1} h of sessions, {traced} traced episodes, {pattern_total} patterns"
    );
    println!(
        "analysis + figure generation took {:.2} s ({:.0} episodes/s)",
        elapsed.as_secs_f64(),
        traced as f64 / elapsed.as_secs_f64()
    );
}
