//! Regenerates Table II: the application suite.

use lagalyzer_sim::apps;

fn main() {
    println!(
        "{:<15} {:<10} {:>8}  Description",
        "Application", "Version", "Classes"
    );
    println!("{}", "-".repeat(70));
    for p in apps::standard_suite() {
        println!(
            "{:<15} {:<10} {:>8}  {}",
            p.name, p.version, p.classes, p.description
        );
    }
}
