//! Regenerates Fig 7: concurrency in episodes (average number of runnable
//! threads).

use lagalyzer_bench::{full_study, save_figure};
use lagalyzer_report::figures;

fn main() {
    let study = full_study();
    for perceptible in [false, true] {
        let fig = figures::fig7(&study, perceptible);
        println!("== {} ==", fig.id);
        print!("{}", fig.text);
        save_figure(&fig);
    }
    let n = study.apps.len() as f64;
    let mean_all: f64 = study
        .apps
        .iter()
        .map(|a| a.aggregate.concurrency.all)
        .sum::<f64>()
        / n;
    let above_one: Vec<&str> = study
        .apps
        .iter()
        .filter(|a| a.aggregate.concurrency.perceptible > 1.0)
        .map(|a| a.aggregate.name.as_str())
        .collect();
    println!("\npaper: 1.2 runnable threads on average; only Arabeske, FindBugs, NetBeans exceed 1 during perceptible episodes");
    println!(
        "measured: {mean_all:.2} on average; above 1 during perceptible episodes: {}",
        above_one.join(", ")
    );
}
