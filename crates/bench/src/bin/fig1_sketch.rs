//! Regenerates Fig 1: the episode sketch of a 1705 ms paint episode with a
//! long native DrawLine call and a nested garbage collection.

use lagalyzer_bench::experiments_dir;
use lagalyzer_sim::scenarios;
use lagalyzer_viz::ascii::ascii_sketch;
use lagalyzer_viz::sketch::{render_sketch, SketchOptions};

fn main() {
    let scenario = scenarios::figure1();
    let svg = render_sketch(
        &scenario.episode,
        &scenario.symbols,
        &SketchOptions::default(),
    );
    let path = experiments_dir().join("fig1_sketch.svg");
    std::fs::write(&path, svg).expect("write fig1 svg");
    println!(
        "{}",
        ascii_sketch(&scenario.episode, &scenario.symbols, 100)
    );
    println!("episode duration: {}", scenario.episode.duration());
    println!("saved {}", path.display());
}
