//! Shared plumbing for the experiment binaries and benches.

#![forbid(unsafe_code)]

pub mod benchjson;

use std::fs;
use std::path::PathBuf;

use lagalyzer_report::figures::Figure;
use lagalyzer_report::Study;
use lagalyzer_sim::apps;

/// The default seed used by every experiment (reproducibility).
pub const SEED: u64 = 42;

/// Where experiment outputs (SVG, text series) are written.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// Runs the full 14-application study with the paper's four sessions per
/// application.
pub fn full_study() -> Study {
    Study::run(&apps::standard_suite(), 4, SEED)
}

/// Runs a reduced study (fewer sessions) for quick iterations.
pub fn quick_study(sessions: u32) -> Study {
    Study::run(&apps::standard_suite(), sessions, SEED)
}

/// Saves a figure's SVG and text form under `target/experiments/`.
pub fn save_figure(fig: &Figure) {
    let dir = experiments_dir();
    fs::write(dir.join(format!("{}.svg", fig.id)), &fig.svg).expect("write svg");
    fs::write(dir.join(format!("{}.txt", fig.id)), &fig.text).expect("write txt");
    eprintln!("saved {}/{}.svg", dir.display(), fig.id);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_is_created() {
        let dir = experiments_dir();
        assert!(dir.exists());
    }

    #[test]
    fn quick_study_covers_suite() {
        let study = quick_study(1);
        assert_eq!(study.apps.len(), 14);
    }
}
