//! Human-readable, line-based text codec.
//!
//! Handy for inspecting simulator output and for writing traces by hand in
//! tests. One record per line; episodes are bracketed by `episode ... end`:
//!
//! ```text
//! lagalyzer-trace v1
//! app JEdit
//! session 3
//! gui_thread 0
//! e2e_ns 502000000000
//! filter_ns 3000000
//! symbol 0 org.gjt.sp.jedit.Buffer
//! symbol 1 keyTyped
//! gc 30000000 45000000 major
//! short_episodes 117615
//! episode 0 0
//! enter D 0
//! enter L 1000000 0 1
//! exit 100000000
//! sample 10000000 0 R 0/1/j
//! exit 104000000
//! end
//! ```

use std::io::{BufRead, BufReader, Read, Write};

use lagalyzer_model::prelude::*;

use crate::error::TraceError;
use crate::record::{records_from_trace, trace_from_records, TraceRecord};

const HEADER_LINE: &str = "lagalyzer-trace v1";

/// The version-independent text signature; used by format sniffing and
/// salvage decoding.
pub(crate) const SIGNATURE_PREFIX: &str = "lagalyzer-trace";

/// Serializes a trace to the text format.
///
/// A `&mut` reference may be passed for `w` (it also implements `Write`).
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write<W: Write>(trace: &SessionTrace, mut w: W) -> Result<(), TraceError> {
    let meta = trace.meta();
    writeln!(w, "{HEADER_LINE}")?;
    writeln!(w, "app {}", meta.application)?;
    writeln!(w, "session {}", meta.session.as_raw())?;
    writeln!(w, "gui_thread {}", meta.gui_thread.as_raw())?;
    writeln!(w, "e2e_ns {}", meta.end_to_end.as_nanos())?;
    writeln!(w, "filter_ns {}", meta.filter_threshold.as_nanos())?;
    for rec in records_from_trace(trace) {
        write_record(&rec, &mut w)?;
    }
    w.flush()?;
    Ok(())
}

fn write_record<W: Write>(rec: &TraceRecord, w: &mut W) -> Result<(), TraceError> {
    match rec {
        TraceRecord::Symbol { id, name } => writeln!(w, "symbol {} {}", id.as_raw(), name)?,
        TraceRecord::Gc(gc) => writeln!(
            w,
            "gc {} {} {}",
            gc.start.as_nanos(),
            gc.end.as_nanos(),
            if gc.major { "major" } else { "minor" }
        )?,
        TraceRecord::ShortEpisodes { count, total } => {
            writeln!(w, "short_episodes {} {}", count, total.as_nanos())?;
        }
        TraceRecord::EpisodeBegin { id, thread } => {
            writeln!(w, "episode {} {}", id.as_raw(), thread.as_raw())?;
        }
        TraceRecord::Enter { kind, symbol, at } => match symbol {
            Some(m) => writeln!(
                w,
                "enter {} {} {} {}",
                kind.tag() as char,
                at.as_nanos(),
                m.class.as_raw(),
                m.method.as_raw()
            )?,
            None => writeln!(w, "enter {} {}", kind.tag() as char, at.as_nanos())?,
        },
        TraceRecord::Exit { at } => writeln!(w, "exit {}", at.as_nanos())?,
        TraceRecord::Sample(snap) => {
            write!(w, "sample {}", snap.time.as_nanos())?;
            for ts in &snap.threads {
                write!(w, " {} {}", ts.thread.as_raw(), ts.state.tag() as char)?;
                for frame in &ts.stack {
                    write!(
                        w,
                        " {}/{}/{}",
                        frame.method.class.as_raw(),
                        frame.method.method.as_raw(),
                        if frame.native { 'n' } else { 'j' }
                    )?;
                }
                write!(w, " ;")?;
            }
            writeln!(w)?;
        }
        TraceRecord::EpisodeEnd => writeln!(w, "end")?,
    }
    Ok(())
}

/// Deserializes a trace from the text format.
///
/// A `&mut` reference may be passed for `r` (it also implements `Read`).
///
/// # Errors
///
/// Fails on I/O errors, unknown directives, malformed fields, or
/// model-invariant violations.
pub fn read<R: Read>(r: R) -> Result<SessionTrace, TraceError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();

    let (_, first) = lines
        .next()
        .ok_or_else(|| TraceError::corrupt("text header", "empty input"))?;
    let first = match first {
        Ok(line) => line,
        // `BufRead::lines` folds invalid UTF-8 into a generic I/O error;
        // surface it as the corruption it is.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return Err(TraceError::corrupt("text header", "invalid UTF-8"));
        }
        Err(e) => return Err(e.into()),
    };
    if first.trim_end() != HEADER_LINE {
        return Err(TraceError::corrupt("text header", first));
    }

    let mut app = None;
    let mut session = None;
    let mut gui_thread = None;
    let mut e2e = None;
    let mut filter = None;
    let mut records = Vec::new();

    for (lineno, line) in lines {
        let line = line?;
        match parse_line(line.trim_end(), lineno + 1)? {
            None => {}
            Some(Directive::App(v)) => app = Some(v),
            Some(Directive::Session(v)) => session = Some(v),
            Some(Directive::GuiThread(v)) => gui_thread = Some(v),
            Some(Directive::E2e(v)) => e2e = Some(v),
            Some(Directive::Filter(v)) => filter = Some(v),
            Some(Directive::Record(rec)) => records.push(rec),
        }
    }

    let meta = SessionMeta {
        application: app.ok_or_else(|| TraceError::corrupt("text header", "missing app"))?,
        session: SessionId::from_raw(
            session.ok_or_else(|| TraceError::corrupt("text header", "missing session"))?,
        ),
        gui_thread: ThreadId::from_raw(
            gui_thread.ok_or_else(|| TraceError::corrupt("text header", "missing gui_thread"))?,
        ),
        end_to_end: DurationNs::from_nanos(
            e2e.ok_or_else(|| TraceError::corrupt("text header", "missing e2e_ns"))?,
        ),
        filter_threshold: DurationNs::from_nanos(
            filter.ok_or_else(|| TraceError::corrupt("text header", "missing filter_ns"))?,
        ),
    };
    Ok(trace_from_records(meta, records)?)
}

/// One parsed line of the text format: a metadata assignment or a record.
enum Directive {
    App(String),
    Session(u32),
    GuiThread(u32),
    E2e(u64),
    Filter(u64),
    Record(TraceRecord),
}

/// Parses one (already right-trimmed) line into a [`Directive`]; `None`
/// for blank lines and `#` comments. `lineno` is 1-based, for messages.
///
/// Shared between the strict reader (which propagates the first error)
/// and the salvage reader (which turns each error into a skipped line).
fn parse_line(line: &str, lineno: usize) -> Result<Option<Directive>, TraceError> {
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let (directive, rest) = line.split_once(' ').unwrap_or((line, ""));
    let parsed = match directive {
        "app" => Directive::App(rest.to_owned()),
        "session" => Directive::Session(parse_u32(rest, lineno, "session")?),
        "gui_thread" => Directive::GuiThread(parse_u32(rest, lineno, "gui_thread")?),
        "e2e_ns" => Directive::E2e(parse_u64(rest, lineno, "e2e_ns")?),
        "filter_ns" => Directive::Filter(parse_u64(rest, lineno, "filter_ns")?),
        _ => Directive::Record(parse_record_line(directive, rest, lineno)?),
    };
    Ok(Some(parsed))
}

/// Parses a record-bearing line (everything that is not metadata).
fn parse_record_line(
    directive: &str,
    rest: &str,
    lineno: usize,
) -> Result<TraceRecord, TraceError> {
    match directive {
        "symbol" => {
            let (id, name) = rest.split_once(' ').ok_or_else(|| {
                TraceError::corrupt("symbol line", format!("line {lineno}: {rest}"))
            })?;
            Ok(TraceRecord::Symbol {
                id: SymbolId::from_raw(parse_u32(id, lineno, "symbol id")?),
                name: name.to_owned(),
            })
        }
        "gc" => {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 3 {
                return Err(TraceError::corrupt(
                    "gc line",
                    format!("line {lineno}: expected 3 fields"),
                ));
            }
            let major = match fields[2] {
                "major" => true,
                "minor" => false,
                other => {
                    return Err(TraceError::corrupt(
                        "gc line",
                        format!("line {lineno}: bad kind {other}"),
                    ))
                }
            };
            Ok(TraceRecord::Gc(GcEvent {
                start: TimeNs::from_nanos(parse_u64(fields[0], lineno, "gc start")?),
                end: TimeNs::from_nanos(parse_u64(fields[1], lineno, "gc end")?),
                major,
            }))
        }
        "short_episodes" => {
            let (count, total) = rest.split_once(' ').ok_or_else(|| {
                TraceError::corrupt(
                    "short_episodes line",
                    format!("line {lineno}: expected 2 fields"),
                )
            })?;
            Ok(TraceRecord::ShortEpisodes {
                count: parse_u64(count, lineno, "short_episodes count")?,
                total: DurationNs::from_nanos(parse_u64(total, lineno, "short_episodes total")?),
            })
        }
        "episode" => {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 2 {
                return Err(TraceError::corrupt(
                    "episode line",
                    format!("line {lineno}: expected 2 fields"),
                ));
            }
            Ok(TraceRecord::EpisodeBegin {
                id: EpisodeId::from_raw(parse_u32(fields[0], lineno, "episode id")?),
                thread: ThreadId::from_raw(parse_u32(fields[1], lineno, "episode thread")?),
            })
        }
        "enter" => {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 2 && fields.len() != 4 {
                return Err(TraceError::corrupt(
                    "enter line",
                    format!("line {lineno}: expected 2 or 4 fields"),
                ));
            }
            let kind_str = fields[0].as_bytes();
            let kind = (kind_str.len() == 1)
                .then(|| IntervalKind::from_tag(kind_str[0]))
                .flatten()
                .ok_or_else(|| {
                    TraceError::corrupt(
                        "enter line",
                        format!("line {lineno}: bad kind {}", fields[0]),
                    )
                })?;
            let symbol = if fields.len() == 4 {
                Some(MethodRef {
                    class: SymbolId::from_raw(parse_u32(fields[2], lineno, "enter class")?),
                    method: SymbolId::from_raw(parse_u32(fields[3], lineno, "enter method")?),
                })
            } else {
                None
            };
            Ok(TraceRecord::Enter {
                kind,
                symbol,
                at: TimeNs::from_nanos(parse_u64(fields[1], lineno, "enter time")?),
            })
        }
        "exit" => Ok(TraceRecord::Exit {
            at: TimeNs::from_nanos(parse_u64(rest, lineno, "exit time")?),
        }),
        "sample" => parse_sample(rest, lineno),
        "end" => Ok(TraceRecord::EpisodeEnd),
        other => Err(TraceError::corrupt(
            "directive",
            format!("line {lineno}: unknown directive {other}"),
        )),
    }
}

/// Salvage-decodes a text trace: recovers every intact episode, skipping
/// malformed or non-UTF-8 lines, and reports what was lost.
///
/// On a clean input this returns exactly what [`read`] returns, plus a
/// report whose [`SalvageReport::is_clean`](crate::SalvageReport::is_clean)
/// holds (`checksum_ok` stays `None`: the text format has no checksum).
///
/// # Errors
///
/// Fails only when the input is unrecoverable: the first line does not
/// carry the `lagalyzer-trace` signature at all.
pub fn read_salvage(bytes: &[u8]) -> Result<crate::salvage::Salvaged, TraceError> {
    use crate::salvage::{build_session, Assembler, Salvaged, SkipAt};

    // Split lines by hand so invalid UTF-8 damages one line, not the file.
    let mut lines = bytes.split(|&b| b == b'\n');
    let first_raw = lines.next().unwrap_or(&[]);
    let mut assembler = Assembler::new();
    match std::str::from_utf8(first_raw) {
        Ok(first) => {
            let first = first.trim_end();
            if first != HEADER_LINE {
                if first.starts_with(SIGNATURE_PREFIX) {
                    assembler.note_skip(
                        SkipAt::Line(1),
                        "text header",
                        format!("unsupported header {first:?}, decoding as v1"),
                    );
                } else {
                    return Err(TraceError::corrupt("text header", first.to_string()));
                }
            }
        }
        // Invalid UTF-8 in the header is damage, never silently accepted:
        // if the signature bytes survive we record the skip and press on,
        // otherwise the input is unrecoverable.
        Err(_) => {
            if first_raw.starts_with(SIGNATURE_PREFIX.as_bytes()) {
                assembler.note_lines_skipped(1);
                assembler.note_skip(
                    SkipAt::Line(1),
                    "text header",
                    "header line contains invalid UTF-8, decoding as v1".into(),
                );
            } else {
                return Err(TraceError::corrupt("text header", "invalid UTF-8"));
            }
        }
    }

    let mut app = None;
    let mut session = None;
    let mut gui_thread = None;
    let mut e2e = None;
    let mut filter = None;
    let mut episodes = Vec::new();
    let mut lineno: u64 = 1;
    for raw in lines {
        lineno += 1;
        let Ok(line) = std::str::from_utf8(raw) else {
            assembler.note_lines_skipped(1);
            assembler.note_skip(SkipAt::Line(lineno), "text line", "invalid UTF-8".into());
            continue;
        };
        match parse_line(line.trim_end(), lineno as usize) {
            Ok(None) => {}
            Ok(Some(Directive::App(v))) => app = Some(v),
            Ok(Some(Directive::Session(v))) => session = Some(v),
            Ok(Some(Directive::GuiThread(v))) => gui_thread = Some(v),
            Ok(Some(Directive::E2e(v))) => e2e = Some(v),
            Ok(Some(Directive::Filter(v))) => filter = Some(v),
            Ok(Some(Directive::Record(rec))) => {
                if let Some(episode) = assembler.push(SkipAt::Line(lineno), rec) {
                    episodes.push(episode);
                }
            }
            Err(e) => {
                assembler.note_lines_skipped(1);
                let (context, detail) = match e {
                    TraceError::Corrupt { context, detail } => (context, detail),
                    other => ("text line", other.to_string()),
                };
                assembler.note_skip(SkipAt::Line(lineno), context, detail);
            }
        }
    }
    assembler.end_of_input(SkipAt::Line(lineno));

    // Missing metadata is damage, not a fatal error: report it and fall
    // back to neutral defaults so the recovered episodes survive.
    macro_rules! field {
        ($opt:expr, $what:literal, $default:expr) => {
            match $opt {
                Some(v) => v,
                None => {
                    assembler.note_skip(
                        SkipAt::Line(1),
                        "text header",
                        concat!("missing ", $what).into(),
                    );
                    $default
                }
            }
        };
    }
    let meta = SessionMeta {
        application: field!(app, "app", String::new()),
        session: SessionId::from_raw(field!(session, "session", 0)),
        gui_thread: ThreadId::from_raw(field!(gui_thread, "gui_thread", 0)),
        end_to_end: DurationNs::from_nanos(field!(e2e, "e2e_ns", 0)),
        filter_threshold: DurationNs::from_nanos(field!(filter, "filter_ns", 0)),
    };
    let (tail, report) = assembler.finish();
    Ok(Salvaged {
        trace: build_session(meta, episodes, tail),
        report,
    })
}

fn parse_sample(rest: &str, lineno: usize) -> Result<TraceRecord, TraceError> {
    let mut fields = rest.split_whitespace();
    let time = TimeNs::from_nanos(parse_u64(
        fields.next().unwrap_or(""),
        lineno,
        "sample time",
    )?);
    let mut threads = Vec::new();
    let mut fields = fields.peekable();
    while let Some(thread_field) = fields.next() {
        let thread = ThreadId::from_raw(parse_u32(thread_field, lineno, "sample thread")?);
        let state_field = fields.next().ok_or_else(|| {
            TraceError::corrupt("sample line", format!("line {lineno}: missing state"))
        })?;
        let state_bytes = state_field.as_bytes();
        let state = (state_bytes.len() == 1)
            .then(|| ThreadState::from_tag(state_bytes[0]))
            .flatten()
            .ok_or_else(|| {
                TraceError::corrupt(
                    "sample line",
                    format!("line {lineno}: bad state {state_field}"),
                )
            })?;
        let mut stack = Vec::new();
        for frame_field in fields.by_ref() {
            if frame_field == ";" {
                break;
            }
            let parts: Vec<&str> = frame_field.split('/').collect();
            if parts.len() != 3 {
                return Err(TraceError::corrupt(
                    "sample line",
                    format!("line {lineno}: bad frame {frame_field}"),
                ));
            }
            let native = match parts[2] {
                "n" => true,
                "j" => false,
                other => {
                    return Err(TraceError::corrupt(
                        "sample line",
                        format!("line {lineno}: bad frame flag {other}"),
                    ))
                }
            };
            stack.push(StackFrame {
                method: MethodRef {
                    class: SymbolId::from_raw(parse_u32(parts[0], lineno, "frame class")?),
                    method: SymbolId::from_raw(parse_u32(parts[1], lineno, "frame method")?),
                },
                native,
            });
        }
        threads.push(ThreadSample::new(thread, state, stack));
    }
    Ok(TraceRecord::Sample(SampleSnapshot::new(time, threads)))
}

fn parse_u64(s: &str, lineno: usize, what: &'static str) -> Result<u64, TraceError> {
    s.parse()
        .map_err(|_| TraceError::corrupt(what, format!("line {lineno}: not a number: {s:?}")))
}

fn parse_u32(s: &str, lineno: usize, what: &'static str) -> Result<u32, TraceError> {
    s.parse()
        .map_err(|_| TraceError::corrupt(what, format!("line {lineno}: not a number: {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn fixture() -> SessionTrace {
        let meta = SessionMeta {
            application: "Gantt Project".into(), // name with a space
            session: SessionId::from_raw(1),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(523),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let paint = b
            .symbols_mut()
            .method("net.sourceforge.ganttproject.GanttTree", "paint");
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.enter(IntervalKind::Async, None, ms(1)).unwrap();
        t.leaf(IntervalKind::Paint, Some(paint), ms(2), ms(130))
            .unwrap();
        t.exit(ms(131)).unwrap();
        t.exit(ms(132)).unwrap();
        let snap = SampleSnapshot::new(
            ms(60),
            vec![
                ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Sleeping,
                    vec![StackFrame::java(paint)],
                ),
                ThreadSample::new(ThreadId::from_raw(3), ThreadState::Blocked, vec![]),
            ],
        );
        let e = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .sample(snap)
            .build()
            .unwrap();
        b.push_episode(e).unwrap();
        b.add_short_episodes(7, DurationNs::from_millis(2));
        b.finish()
    }

    fn encode(trace: &SessionTrace) -> String {
        let mut buf = Vec::new();
        write(trace, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = fixture();
        let text = encode(&trace);
        let back = read(text.as_bytes()).unwrap();
        assert_eq!(back.meta(), trace.meta());
        assert_eq!(back.episodes(), trace.episodes());
        assert_eq!(back.short_episode_count(), 7);
        assert_eq!(back.short_episode_time(), DurationNs::from_millis(2));
    }

    #[test]
    fn app_name_with_spaces_survives() {
        let back = read(encode(&fixture()).as_bytes()).unwrap();
        assert_eq!(back.meta().application, "Gantt Project");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let trace = fixture();
        let mut text = encode(&trace);
        text.push_str("\n# trailing comment\n\n");
        let back = read(text.as_bytes()).unwrap();
        assert_eq!(back.episodes().len(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(
            read("not a trace\n".as_bytes()),
            Err(TraceError::Corrupt { .. })
        ));
        assert!(matches!(
            read("".as_bytes()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn unknown_directive_rejected() {
        let text = format!("{HEADER_LINE}\nfrobnicate 1\n");
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn missing_metadata_rejected() {
        let text = format!("{HEADER_LINE}\napp X\n");
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("session"));
    }

    #[test]
    fn bad_numbers_carry_line_numbers() {
        let text = format!("{HEADER_LINE}\napp X\nsession banana\n");
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn bad_interval_kind_rejected() {
        let text = format!(
            "{HEADER_LINE}\napp X\nsession 0\ngui_thread 0\ne2e_ns 1\nfilter_ns 1\n\
             episode 0 0\nenter Z 0\nexit 1\nend\n"
        );
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn invalid_utf8_header_rejected_strictly() {
        let mut bytes = encode(&fixture()).into_bytes();
        // Damage the header line itself with a continuation byte.
        bytes[17] = 0xff;
        assert!(matches!(
            read(bytes.as_slice()),
            Err(TraceError::Corrupt {
                context: "text header",
                ..
            })
        ));
    }

    #[test]
    fn invalid_utf8_header_salvages_with_a_recorded_skip() {
        let trace = fixture();
        let mut bytes = encode(&trace).into_bytes();
        bytes[17] = 0xff; // signature prefix survives, version suffix does not
        let salvaged = read_salvage(&bytes).unwrap();
        assert!(!salvaged.report.is_clean());
        assert_eq!(salvaged.report.lines_skipped, 1);
        assert!(salvaged
            .report
            .skips
            .iter()
            .any(|s| s.detail.contains("invalid UTF-8")));
        assert_eq!(salvaged.trace.episodes(), trace.episodes());
    }

    #[test]
    fn invalid_utf8_garbage_header_is_unrecoverable() {
        let bytes = b"\xff\xfe garbage\nrest\n";
        assert!(read_salvage(bytes).is_err());
    }

    #[test]
    fn handwritten_trace_parses() {
        let text = format!(
            "{HEADER_LINE}\n\
             app Tiny\nsession 0\ngui_thread 0\ne2e_ns 1000000000\nfilter_ns 3000000\n\
             episode 0 0\n\
             enter D 0\n\
             enter P 1000000\n\
             exit 150000000\n\
             sample 50000000 0 R ;\n\
             exit 151000000\n\
             end\n"
        );
        let trace = read(text.as_bytes()).unwrap();
        assert_eq!(trace.episodes().len(), 1);
        let e = &trace.episodes()[0];
        assert_eq!(e.duration(), DurationNs::from_millis(151));
        assert_eq!(e.samples().len(), 1);
        assert_eq!(e.samples()[0].threads[0].state, ThreadState::Runnable);
    }
}
