//! Persisted per-episode rollup sections: the warm-path analysis cache.
//!
//! A **rollup** is a compact, derived summary of every episode in a trace
//! — its shape token stream (over the session's symbol ids), structural
//! metrics, and a per-category lag decomposition — plus a handful of
//! pre-aggregated views (duration-band × time-bucket grids at two zoom
//! granularities, per-shape duration histograms). With a rollup present,
//! the analyses that normally decode and re-mine every episode can be
//! answered from the summaries alone; only drill-downs (e.g. wait-edge
//! culprit extraction) touch episode payloads, via
//! [`crate::IndexedTrace::par_decode_subset`].
//!
//! Rollups are persisted as *optional* sections:
//!
//! * in a v2 binary trace, between the extent footer and the trailer
//!   checksum (inside the checksummed region), using the same end-located
//!   framing as the footer so readers peel it from the back;
//! * in a `.lgzc` corpus, as a per-session section of a new kind
//!   (see [`crate::corpus`]); old readers skip unknown section kinds.
//!
//! A rollup is a cache, never a source of truth. It embeds a **content
//! checksum** — an FNV-1a hash of the container region it summarizes: for
//! a v2 trace, the running trailer hash snapshotted at the section
//! boundary (so the reader's single trailer pass validates the cache for
//! free); for a corpus session, the FNV of the session payload region —
//! and readers only surface a rollup whose checksum matches the bytes
//! actually present, so a stale or tampered cache silently degrades to
//! the cold decode-and-mine path. Any structural damage to the section likewise
//! degrades: either the section is dropped (footer still locatable) or
//! the whole footer region falls back to the established scan path.

use crate::binary::{fnv1a, MAX_RECORDS};
use crate::error::TraceError;
use crate::varint;

/// Rollup section signature; the last byte is the section format version.
pub(crate) const ROLLUP_MAGIC: &[u8; 8] = b"LGLZRUP\x01";

/// Fixed section bytes besides the varint payload: leading magic, section
/// checksum, section length, trailing magic (footer-style framing).
const SECTION_FIXED: usize = 8 + 8 + 8 + 8;

/// Number of buckets in a per-shape log2-millisecond duration histogram.
pub const SHAPE_HIST_BUCKETS: usize = 16;

/// Time-bucket counts per duration band at the persisted zoom
/// granularities (coarse overview, fine brush target).
pub const GRID_GRANULARITIES: [u32; 2] = [64, 512];

/// Number of duration bands a grid row covers (matches
/// [`crate::DurationBand`]'s four variants).
pub const GRID_BANDS: usize = 4;

/// Diagnostic classification of a persisted rollup section (see
/// [`crate::index::probe_rollup`] and `lagalyzer lint`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RollupHealth {
    /// No rollup section is present.
    Absent,
    /// A rollup is present and would be trusted by the warm path.
    Valid {
        /// Size of the whole persisted section, framing included.
        section_bytes: u64,
    },
    /// A rollup is present but would be ignored (the reason is attached):
    /// damaged framing/payload or a content checksum that no longer
    /// matches the episode bytes.
    Stale {
        /// Why the section is not trusted.
        reason: String,
        /// Size of the whole persisted section, framing included.
        section_bytes: u64,
    },
}

impl RollupHealth {
    /// One-line human-readable description (used by `lagalyzer lint`).
    pub fn describe(&self) -> String {
        match self {
            RollupHealth::Absent => "absent".into(),
            RollupHealth::Valid { section_bytes } => {
                format!("valid ({section_bytes} bytes)")
            }
            RollupHealth::Stale {
                reason,
                section_bytes,
            } => format!("stale ({reason}; {section_bytes} bytes, ignored)"),
        }
    }
}

impl std::fmt::Display for RollupHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// One episode's derived summary — everything the warm analysis path
/// needs that the extent index does not already carry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpisodeSummary {
    /// True when the episode's dispatch interval has no children
    /// (excluded from pattern mining, like the cold path does).
    pub structureless: bool,
    /// True when the episode's tree contains at least one GC interval.
    pub has_gc: bool,
    /// Index into [`Rollup::shapes`] of this episode's token stream.
    pub shape: u32,
    /// Dispatch-descendant count (Table III "Descs" input).
    pub tree_size: u64,
    /// Interval-tree depth (Table III "Depth" input).
    pub tree_depth: u32,
    /// Per-category lag decomposition in nanoseconds, in canonical order:
    /// lock, wait, sleep, gc, io, native, self.
    pub breakdown: [u64; 7],
}

/// A duration-band × time-bucket episode-count grid at one granularity.
///
/// `counts` is band-major: `counts[band * buckets + bucket]`, bands in
/// [`crate::DurationBand`] order (Short never occurs — traced episodes
/// start at the filter threshold — but the row is kept so indices mirror
/// the band enum).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BandGrid {
    /// Number of time buckets across the session's end-to-end span.
    pub buckets: u32,
    /// Episode counts, band-major, `GRID_BANDS * buckets` entries.
    pub counts: Vec<u64>,
}

impl BandGrid {
    /// The count at `band` (0-based, [`crate::DurationBand`] order) and
    /// `bucket`.
    pub fn count(&self, band: usize, bucket: usize) -> u64 {
        self.counts[band * self.buckets as usize + bucket]
    }
}

/// The full rollup of one session's episodes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Rollup {
    /// FNV-1a over the container region this rollup summarizes — for a
    /// v2 trace the trailer hash's running state at the section start,
    /// for a corpus session the FNV of the payload region. Readers
    /// recompute it from the bytes present and drop the rollup on
    /// mismatch.
    pub content_checksum: u64,
    /// Deduplicated shape token streams (see
    /// `lagalyzer-core`'s shape module for the grammar), in first-use
    /// order over the session's episodes.
    pub shapes: Vec<Vec<u8>>,
    /// One summary per episode, in extent order (must be 1:1 with the
    /// extent index to be usable).
    pub summaries: Vec<EpisodeSummary>,
    /// Band × time-bucket grids, one per [`GRID_GRANULARITIES`] entry.
    pub grids: Vec<BandGrid>,
    /// Per-shape log2-ms duration histograms, 1:1 with `shapes`.
    pub shape_histograms: Vec<[u64; SHAPE_HIST_BUCKETS]>,
}

impl Rollup {
    /// The log2-ms histogram bucket a duration falls into.
    pub fn hist_bucket(duration_ns: u64) -> usize {
        let ms = duration_ns / 1_000_000;
        if ms == 0 {
            0
        } else {
            ((64 - ms.leading_zeros()) as usize).min(SHAPE_HIST_BUCKETS - 1)
        }
    }

    /// The time bucket (of `buckets`) an episode starting at `start_ns`
    /// falls into, over a session spanning `span_ns`.
    pub fn time_bucket(start_ns: u64, span_ns: u64, buckets: u32) -> usize {
        let span = span_ns.max(1);
        let idx = (u128::from(start_ns) * u128::from(buckets) / u128::from(span)) as usize;
        idx.min(buckets as usize - 1)
    }

    /// Serializes the rollup payload (everything between the section
    /// magic framing).
    pub(crate) fn encode_payload(&self) -> Result<Vec<u8>, TraceError> {
        let mut out = Vec::with_capacity(64 + self.summaries.len() * 16);
        out.extend_from_slice(&self.content_checksum.to_le_bytes());
        varint::write_u64(&mut out, self.shapes.len() as u64)?;
        for shape in &self.shapes {
            varint::write_u64(&mut out, shape.len() as u64)?;
            out.extend_from_slice(shape);
        }
        varint::write_u64(&mut out, self.summaries.len() as u64)?;
        for s in &self.summaries {
            let flags = u8::from(s.structureless) | (u8::from(s.has_gc) << 1);
            out.push(flags);
            varint::write_u32(&mut out, s.shape)?;
            varint::write_u64(&mut out, s.tree_size)?;
            varint::write_u32(&mut out, s.tree_depth)?;
            for &v in &s.breakdown {
                varint::write_u64(&mut out, v)?;
            }
        }
        varint::write_u64(&mut out, self.grids.len() as u64)?;
        for grid in &self.grids {
            varint::write_u32(&mut out, grid.buckets)?;
            if grid.counts.len() != GRID_BANDS * grid.buckets as usize {
                return Err(TraceError::corrupt("rollup grid", "count/bucket mismatch"));
            }
            for &c in &grid.counts {
                varint::write_u64(&mut out, c)?;
            }
        }
        varint::write_u64(&mut out, self.shape_histograms.len() as u64)?;
        for hist in &self.shape_histograms {
            for &c in hist {
                varint::write_u64(&mut out, c)?;
            }
        }
        Ok(out)
    }

    /// Decodes a rollup payload from `bytes[*pos..end]`, advancing `pos`.
    pub(crate) fn decode_payload(
        bytes: &[u8],
        pos: &mut usize,
        end: usize,
    ) -> Result<Rollup, TraceError> {
        const MAX_SHAPE_LEN: u64 = 1 << 24;
        const MAX_GRIDS: u64 = 8;
        const MAX_BUCKETS: u32 = 1 << 16;
        if *pos + 8 > end {
            return Err(TraceError::corrupt("rollup payload", "truncated checksum"));
        }
        let content_checksum =
            u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().expect("8-byte slice"));
        *pos += 8;
        let shape_count = varint::read_u64_at(bytes, pos, end)?;
        if shape_count > MAX_RECORDS {
            return Err(TraceError::corrupt("rollup shapes", "count exceeds cap"));
        }
        let mut shapes = Vec::with_capacity(shape_count.min(4096) as usize);
        for _ in 0..shape_count {
            let len = varint::read_u64_at(bytes, pos, end)?;
            if len > MAX_SHAPE_LEN || *pos + len as usize > end {
                return Err(TraceError::corrupt("rollup shapes", "shape length"));
            }
            shapes.push(bytes[*pos..*pos + len as usize].to_vec());
            *pos += len as usize;
        }
        let summary_count = varint::read_u64_at(bytes, pos, end)?;
        if summary_count > MAX_RECORDS {
            return Err(TraceError::corrupt("rollup summaries", "count exceeds cap"));
        }
        let mut summaries = Vec::with_capacity(summary_count.min(4096) as usize);
        for _ in 0..summary_count {
            if *pos >= end {
                return Err(TraceError::corrupt("rollup summaries", "truncated"));
            }
            let flags = bytes[*pos];
            *pos += 1;
            if flags & !0b11 != 0 {
                return Err(TraceError::corrupt(
                    "rollup summaries",
                    format!("unknown flags {flags:#04x}"),
                ));
            }
            let shape = varint::read_u32_at(bytes, pos, end)?;
            if u64::from(shape) >= shape_count {
                return Err(TraceError::corrupt(
                    "rollup summaries",
                    "shape index out of range",
                ));
            }
            let tree_size = varint::read_u64_at(bytes, pos, end)?;
            let tree_depth = varint::read_u32_at(bytes, pos, end)?;
            let mut breakdown = [0u64; 7];
            for slot in &mut breakdown {
                *slot = varint::read_u64_at(bytes, pos, end)?;
            }
            summaries.push(EpisodeSummary {
                structureless: flags & 1 != 0,
                has_gc: flags & 2 != 0,
                shape,
                tree_size,
                tree_depth,
                breakdown,
            });
        }
        let grid_count = varint::read_u64_at(bytes, pos, end)?;
        if grid_count > MAX_GRIDS {
            return Err(TraceError::corrupt("rollup grids", "count exceeds cap"));
        }
        let mut grids = Vec::with_capacity(grid_count as usize);
        for _ in 0..grid_count {
            let buckets = varint::read_u32_at(bytes, pos, end)?;
            if buckets == 0 || buckets > MAX_BUCKETS {
                return Err(TraceError::corrupt("rollup grids", "bucket count"));
            }
            let mut counts = Vec::with_capacity(GRID_BANDS * buckets as usize);
            for _ in 0..GRID_BANDS * buckets as usize {
                counts.push(varint::read_u64_at(bytes, pos, end)?);
            }
            grids.push(BandGrid { buckets, counts });
        }
        let hist_count = varint::read_u64_at(bytes, pos, end)?;
        if hist_count != shape_count {
            return Err(TraceError::corrupt(
                "rollup histograms",
                "histogram/shape count mismatch",
            ));
        }
        let mut shape_histograms = Vec::with_capacity(hist_count.min(4096) as usize);
        for _ in 0..hist_count {
            let mut hist = [0u64; SHAPE_HIST_BUCKETS];
            for slot in &mut hist {
                *slot = varint::read_u64_at(bytes, pos, end)?;
            }
            shape_histograms.push(hist);
        }
        Ok(Rollup {
            content_checksum,
            shapes,
            summaries,
            grids,
            shape_histograms,
        })
    }
}

/// Encodes the full rollup section (leading magic through trailing magic),
/// mirroring the footer's end-located framing so readers peel it from the
/// back of the checksummed region.
pub(crate) fn encode_section(rollup: &Rollup) -> Result<Vec<u8>, TraceError> {
    let payload = rollup.encode_payload()?;
    let mut section = Vec::with_capacity(payload.len() + SECTION_FIXED + 4);
    section.extend_from_slice(ROLLUP_MAGIC);
    varint::write_u64(&mut section, payload.len() as u64)?;
    section.extend_from_slice(&payload);
    let checksum = fnv1a(&section);
    section.extend_from_slice(&checksum.to_le_bytes());
    let total = section.len() as u64 + 16;
    section.extend_from_slice(&total.to_le_bytes());
    section.extend_from_slice(ROLLUP_MAGIC);
    Ok(section)
}

/// The outcome of peeling an optional rollup section off the back of a
/// region ending at `payload_end`.
pub(crate) struct PeeledRollup {
    /// Where the region ends once the section (if any) is removed — the
    /// position footer location proceeds from.
    pub end: usize,
    /// The decoded section: `None` when no section is present, `Some(Err)`
    /// when one is present but unusable (dropped; reason attached).
    pub rollup: Option<Result<Rollup, String>>,
}

/// Locates a plausibly-framed rollup section at the back of
/// `bytes[..payload_end]` without touching its checksum or payload,
/// returning the section's start offset. The boundary is needed *before*
/// the trailer pass so the running trailer hash can be snapshotted at the
/// section start — that snapshot is the content checksum a trace rollup
/// must match (see `crate::binary::write_with_rollup`).
pub(crate) fn pre_locate(bytes: &[u8], payload_end: usize) -> Option<usize> {
    if payload_end < SECTION_FIXED + 1 || payload_end > bytes.len() {
        return None;
    }
    if &bytes[payload_end - 8..payload_end] != ROLLUP_MAGIC {
        return None;
    }
    let total = u64::from_le_bytes(
        bytes[payload_end - 16..payload_end - 8]
            .try_into()
            .expect("8-byte slice"),
    );
    if total < (SECTION_FIXED + 1) as u64 || total > payload_end as u64 {
        return None;
    }
    let section_start = payload_end - total as usize;
    if &bytes[section_start..section_start + 8] != ROLLUP_MAGIC {
        return None;
    }
    Some(section_start)
}

/// Peels an optional rollup section from `bytes[..payload_end]`.
///
/// When the trailing 8 bytes are not the rollup magic there is no section
/// and `end` is unchanged. When the framing parses but the checksum or
/// payload is bad, `end` still moves past the section (the footer below
/// remains locatable) and the rollup is reported unusable. When even the
/// framing is unreadable, `end` is unchanged — footer location will then
/// fail on the rollup magic and the caller falls back to the record scan,
/// which ignores all trailing bytes.
pub(crate) fn peel(bytes: &[u8], payload_end: usize) -> PeeledRollup {
    let Some(section_start) = pre_locate(bytes, payload_end) else {
        return PeeledRollup {
            end: payload_end,
            rollup: None,
        };
    };
    let checked_end = payload_end - 24;
    let stored = u64::from_le_bytes(
        bytes[checked_end..checked_end + 8]
            .try_into()
            .expect("8-byte slice"),
    );
    let computed = fnv1a(&bytes[section_start..checked_end]);
    if stored != computed {
        return PeeledRollup {
            end: section_start,
            rollup: Some(Err("rollup section checksum mismatch".into())),
        };
    }
    let mut pos = section_start + 8;
    let payload_len = match varint::read_u64_at(bytes, &mut pos, checked_end) {
        Ok(len) => len,
        Err(e) => {
            return PeeledRollup {
                end: section_start,
                rollup: Some(Err(format!("bad rollup payload length: {e}"))),
            }
        }
    };
    if pos + payload_len as usize != checked_end {
        return PeeledRollup {
            end: section_start,
            rollup: Some(Err(
                "rollup payload length disagrees with section length".into()
            )),
        };
    }
    let decoded = Rollup::decode_payload(bytes, &mut pos, checked_end);
    let rollup = match decoded {
        Ok(rollup) if pos == checked_end => Ok(rollup),
        Ok(_) => Err("trailing bytes after the rollup payload".into()),
        Err(e) => Err(format!("bad rollup payload: {e}")),
    };
    PeeledRollup {
        end: section_start,
        rollup: Some(rollup),
    }
}

/// FNV-1a over the container region a rollup summarizes. Pass the region
/// the checksum is defined over: for a v2 trace, `bytes[8..section_start]`
/// (equal to the trailer hash's running state at the section boundary —
/// `IndexedTrace::open` derives it as a snapshot of its single trailer
/// pass instead of calling this); for a corpus session, the payload
/// region (the concatenation of its episode extent spans).
pub fn content_checksum(region: &[u8]) -> u64 {
    fnv1a(region)
}

/// Validates a decoded rollup against the bytes actually present:
/// the summary table must be 1:1 with the extent index and the content
/// checksum must equal `expected` (see [`content_checksum`]). Returns
/// `None` (cache miss) on any mismatch.
pub fn validate(rollup: Rollup, expected: u64, extent_count: usize) -> Option<Rollup> {
    if rollup.summaries.len() != extent_count {
        return None;
    }
    if rollup.shape_histograms.len() != rollup.shapes.len() {
        return None;
    }
    if rollup.content_checksum != expected {
        return None;
    }
    Some(rollup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rollup() -> Rollup {
        Rollup {
            content_checksum: 0xdead_beef,
            shapes: vec![b"D".to_vec(), b"D[L]".to_vec()],
            summaries: vec![
                EpisodeSummary {
                    structureless: true,
                    has_gc: false,
                    shape: 0,
                    tree_size: 0,
                    tree_depth: 0,
                    breakdown: [0, 1, 2, 3, 4, 5, 6],
                },
                EpisodeSummary {
                    structureless: false,
                    has_gc: true,
                    shape: 1,
                    tree_size: 3,
                    tree_depth: 2,
                    breakdown: [7; 7],
                },
            ],
            grids: GRID_GRANULARITIES
                .iter()
                .map(|&buckets| BandGrid {
                    buckets,
                    counts: vec![0; GRID_BANDS * buckets as usize],
                })
                .collect(),
            shape_histograms: vec![[0; SHAPE_HIST_BUCKETS], [1; SHAPE_HIST_BUCKETS]],
        }
    }

    #[test]
    fn payload_round_trips() {
        let rollup = sample_rollup();
        let payload = rollup.encode_payload().unwrap();
        let mut pos = 0;
        let back = Rollup::decode_payload(&payload, &mut pos, payload.len()).unwrap();
        assert_eq!(pos, payload.len());
        assert_eq!(back, rollup);
    }

    #[test]
    fn section_round_trips_via_peel() {
        let rollup = sample_rollup();
        let mut region = b"prefix-bytes".to_vec();
        region.extend_from_slice(&encode_section(&rollup).unwrap());
        let peeled = peel(&region, region.len());
        assert_eq!(peeled.end, "prefix-bytes".len());
        assert_eq!(peeled.rollup.unwrap().unwrap(), rollup);
    }

    #[test]
    fn peel_reports_absent_without_magic() {
        let region = vec![0u8; 64];
        let peeled = peel(&region, region.len());
        assert_eq!(peeled.end, region.len());
        assert!(peeled.rollup.is_none());
    }

    #[test]
    fn corrupt_section_checksum_is_dropped_but_peeled() {
        let rollup = sample_rollup();
        let section = encode_section(&rollup).unwrap();
        let mut region = b"pre".to_vec();
        let flip_at = region.len() + 12;
        region.extend_from_slice(&section);
        region[flip_at] ^= 0xff;
        let peeled = peel(&region, region.len());
        assert_eq!(peeled.end, 3, "footer region below must stay locatable");
        assert!(peeled.rollup.unwrap().is_err());
    }

    #[test]
    fn summary_shape_index_validated() {
        let mut rollup = sample_rollup();
        rollup.summaries[1].shape = 9;
        let payload = rollup.encode_payload().unwrap();
        let mut pos = 0;
        assert!(Rollup::decode_payload(&payload, &mut pos, payload.len()).is_err());
    }

    #[test]
    fn validate_rejects_stale_checksum_and_count_mismatch() {
        let region = b"0123456789";
        let mut rollup = sample_rollup();
        rollup.summaries.truncate(1);
        rollup.content_checksum = content_checksum(region);
        assert!(validate(rollup.clone(), content_checksum(region), 1).is_some());
        let mut stale = rollup.clone();
        stale.content_checksum ^= 1;
        assert!(validate(stale, content_checksum(region), 1).is_none());
        let mut mismatched = rollup;
        mismatched.summaries.clear();
        assert!(validate(mismatched, content_checksum(region), 1).is_none());
    }

    #[test]
    fn hist_and_time_buckets_stay_in_range() {
        assert_eq!(Rollup::hist_bucket(0), 0);
        assert_eq!(Rollup::hist_bucket(1_000_000), 1);
        assert_eq!(Rollup::hist_bucket(u64::MAX), SHAPE_HIST_BUCKETS - 1);
        assert_eq!(Rollup::time_bucket(0, 100, 64), 0);
        assert_eq!(Rollup::time_bucket(99, 100, 64), 63);
        assert_eq!(Rollup::time_bucket(500, 100, 64), 63, "clamped past span");
        assert_eq!(Rollup::time_bucket(0, 0, 64), 0, "zero span is safe");
    }
}
