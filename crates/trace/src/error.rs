//! Error type for trace encoding and decoding.

use std::error::Error;
use std::fmt;
use std::io;

use lagalyzer_model::ModelError;

/// Errors raised while reading or writing traces.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The input is not a trace in the expected format.
    Corrupt {
        /// What the decoder was reading when it failed.
        context: &'static str,
        /// Free-form detail (offending bytes, line number, ...).
        detail: String,
    },
    /// The trace is well-formed at the byte level but violates a model
    /// invariant (e.g. overlapping intervals).
    Model(ModelError),
    /// The declared format version is not supported by this build.
    UnsupportedVersion {
        /// The version found in the input.
        found: u32,
    },
    /// The trailer checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
}

impl TraceError {
    /// Convenience constructor for corruption errors.
    pub fn corrupt(context: &'static str, detail: impl Into<String>) -> Self {
        TraceError::Corrupt {
            context,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::Corrupt { context, detail } => {
                write!(f, "corrupt trace while reading {context}: {detail}")
            }
            TraceError::Model(e) => write!(f, "trace violates model invariant: {e}"),
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version {found}")
            }
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<ModelError> for TraceError {
    fn from(e: ModelError) -> Self {
        TraceError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = TraceError::corrupt("header", "bad magic");
        assert_eq!(
            e.to_string(),
            "corrupt trace while reading header: bad magic"
        );
        assert!(TraceError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains('9'));
        assert!(TraceError::ChecksumMismatch {
            stored: 1,
            computed: 2
        }
        .to_string()
        .contains("mismatch"));
    }

    #[test]
    fn sources_are_chained() {
        let io_err = TraceError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(io_err.source().is_some());
        let model_err = TraceError::from(ModelError::MissingRoot);
        assert!(model_err.source().is_some());
        assert!(TraceError::corrupt("x", "y").source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<TraceError>();
    }
}
