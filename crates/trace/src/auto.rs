//! Codec auto-detection: load a trace without knowing which codec wrote
//! it (binary traces start with the `LGLZTRC` magic, text traces with the
//! `lagalyzer-trace` header line).

use std::path::Path;

use lagalyzer_model::SessionTrace;

use crate::error::TraceError;
use crate::{binary, text};

/// Decodes a trace from bytes, auto-detecting the codec.
///
/// # Errors
///
/// Propagates the underlying codec's errors; unrecognizable input is
/// reported as corrupt.
pub fn read_bytes(bytes: &[u8]) -> Result<SessionTrace, TraceError> {
    if bytes.starts_with(b"LGLZTRC") {
        binary::read(bytes)
    } else if bytes.starts_with(b"lagalyzer-trace") {
        text::read(bytes)
    } else {
        Err(TraceError::corrupt(
            "auto-detect",
            "neither binary magic nor text header found",
        ))
    }
}

/// Reads and decodes a trace file, auto-detecting the codec.
///
/// # Errors
///
/// Fails on I/O errors or any codec error.
pub fn read_path<P: AsRef<Path>>(path: P) -> Result<SessionTrace, TraceError> {
    let bytes = std::fs::read(path)?;
    read_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::prelude::*;

    fn fixture() -> SessionTrace {
        let meta = SessionMeta {
            application: "Auto".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(1),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, TimeNs::ZERO).unwrap();
        t.exit(TimeNs::from_millis(10)).unwrap();
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        b.finish()
    }

    #[test]
    fn detects_binary() {
        let trace = fixture();
        let mut buf = Vec::new();
        binary::write(&trace, &mut buf).unwrap();
        let back = read_bytes(&buf).unwrap();
        assert_eq!(back.meta().application, "Auto");
    }

    #[test]
    fn detects_text() {
        let trace = fixture();
        let mut buf = Vec::new();
        text::write(&trace, &mut buf).unwrap();
        let back = read_bytes(&buf).unwrap();
        assert_eq!(back.episodes().len(), 1);
    }

    #[test]
    fn rejects_unknown_input() {
        assert!(matches!(
            read_bytes(b"definitely not a trace"),
            Err(TraceError::Corrupt { .. })
        ));
        assert!(matches!(read_bytes(b""), Err(TraceError::Corrupt { .. })));
    }

    #[test]
    fn reads_from_disk() {
        let dir = std::env::temp_dir().join(format!("lagalyzer-auto-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.lgz");
        let trace = fixture();
        let mut buf = Vec::new();
        binary::write(&trace, &mut buf).unwrap();
        std::fs::write(&path, &buf).unwrap();
        let back = read_path(&path).unwrap();
        assert_eq!(back.meta().application, "Auto");
        assert!(read_path(dir.join("missing.lgz")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
