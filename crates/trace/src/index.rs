//! Episode extent index and zero-copy parallel decode.
//!
//! The binary codec streams records strictly sequentially, so even though
//! the analyses shard across cores, ingest was a serial bottleneck. This
//! module makes the record region *indexable*: an [`EpisodeExtent`] table
//! maps every episode to the byte range of its records plus enough
//! metadata (id, start/end timestamp, interval/sample counts) to answer
//! duration-band and time-window queries without touching the episode's
//! bytes at all.
//!
//! The table is carried in a checksummed **footer** that v2 binary traces
//! append between the last record and the trailer (see the layout in
//! [`crate::binary`]). For legacy v1 traces — or a v2 trace whose footer
//! is damaged — the same table is reconstructed by a single cheap scan
//! that skims record boundaries without materializing episode bodies.
//! Salvage mode rebuilds the table too, recording per-extent how many
//! skips preceded each recovered episode.
//!
//! [`IndexedTrace`] ties it together: it owns the raw bytes, borrows
//! episode payloads zero-copy by extent, decodes single episodes on
//! demand ([`IndexedTrace::decode_episode`]), and fans whole-session
//! decoding out over the worker pool ([`IndexedTrace::par_decode`]),
//! producing a [`SessionTrace`] identical to the serial reader's. An
//! [`EpisodeFilter`] evaluated against index entries alone implements
//! skip-decode filtering: excluded episodes' bytes are never parsed.

use std::ops::Range;

use lagalyzer_model::parallel::map_shards_init;
use lagalyzer_model::{
    DurationNs, Episode, EpisodeBuilder, EpisodeFragment, EpisodeId, GcEvent, IntervalKind,
    IntervalTreeBuilder, MethodRef, SampleSnapshot, SessionMeta, SessionTrace, SessionTraceBuilder,
    StackFrame, SymbolId, SymbolTable, ThreadId, ThreadSample, ThreadState, TimeNs,
};

use crate::binary::{fnv1a, read_header, read_record, tag, MAGIC_PREFIX, MAX_RECORDS};
use crate::error::TraceError;
use crate::record::TraceRecord;
use crate::salvage::SalvageReport;
use crate::varint;

/// Footer signature; the last byte is the footer format version.
pub(crate) const FOOTER_MAGIC: &[u8; 8] = b"LGLZIDX\x01";

/// Fixed footer bytes besides the varint payload: leading magic, footer
/// checksum, footer length, trailing magic.
const FOOTER_FIXED: usize = 8 + 8 + 8 + 8;

/// Coarse duration classification used by skip-decode filtering.
///
/// The band boundaries follow the paper's vocabulary: episodes under the
/// tracer-side filter threshold (3 ms) are *short*, episodes beyond the
/// perceptibility threshold (100 ms) are *perceptible*, and anything past
/// one second is *severe* lag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DurationBand {
    /// Under the tracer-side filter threshold (3 ms).
    Short,
    /// Traced but below the perceptibility threshold (3 ms – 100 ms).
    Brief,
    /// Perceptible lag (100 ms – 1 s).
    Perceptible,
    /// Severe lag (1 s and beyond).
    Severe,
}

impl DurationBand {
    /// Nanoseconds where severe lag begins.
    const SEVERE_NS: u64 = 1_000_000_000;

    /// Classifies a duration into its band.
    pub const fn of(duration: DurationNs) -> DurationBand {
        let ns = duration.as_nanos();
        if ns < DurationNs::TRACE_FILTER_DEFAULT.as_nanos() {
            DurationBand::Short
        } else if ns < DurationNs::PERCEPTIBLE_DEFAULT.as_nanos() {
            DurationBand::Brief
        } else if ns < Self::SEVERE_NS {
            DurationBand::Perceptible
        } else {
            DurationBand::Severe
        }
    }
}

/// One episode's entry in the extent index: where its records live and
/// what a filter needs to know without decoding them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpisodeExtent {
    /// Absolute byte offset of the episode's begin record.
    pub offset: u64,
    /// Byte length of the episode's record span (begin through end).
    pub len: u64,
    /// The episode id.
    pub id: EpisodeId,
    /// Dispatch timestamp (root interval start).
    pub start: TimeNs,
    /// Completion timestamp (root interval end).
    pub end: TimeNs,
    /// Interval-tree node count (saturated to `u32`).
    pub intervals: u32,
    /// Stack-sample count (saturated to `u32`).
    pub samples: u32,
    /// Salvage skips attributed to this extent: damage regions stepped
    /// over since the previous recovered episode. Always 0 on a clean
    /// trace.
    pub skips: u32,
}

impl EpisodeExtent {
    /// The episode duration derivable from the indexed timestamps.
    pub fn duration(&self) -> DurationNs {
        self.end.saturating_since(self.start)
    }

    /// The duration band this episode falls into.
    pub fn band(&self) -> DurationBand {
        DurationBand::of(self.duration())
    }
}

/// A predicate over index entries: which episodes are worth decoding.
///
/// Both conditions must hold (an unset condition always holds). The
/// time window admits episodes that *overlap* the window, matching how a
/// user brushes a session timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpisodeFilter {
    min_duration: Option<DurationNs>,
    window: Option<(TimeNs, TimeNs)>,
}

impl EpisodeFilter {
    /// A filter that admits everything.
    pub fn new() -> EpisodeFilter {
        EpisodeFilter::default()
    }

    /// Requires at least this duration; combined with an earlier minimum
    /// the stricter one wins.
    #[must_use]
    pub fn min_duration(mut self, min: DurationNs) -> EpisodeFilter {
        self.min_duration = Some(match self.min_duration {
            Some(existing) => existing.max(min),
            None => min,
        });
        self
    }

    /// Requires overlap with the session-time window `[from, until]`.
    #[must_use]
    pub fn window(mut self, from: TimeNs, until: TimeNs) -> EpisodeFilter {
        self.window = Some((from, until));
        self
    }

    /// `true` when no condition is set (every episode is admitted).
    pub fn is_unrestricted(&self) -> bool {
        self.min_duration.is_none() && self.window.is_none()
    }

    /// Evaluates the filter against an episode's timestamps alone.
    pub fn admits(&self, start: TimeNs, end: TimeNs) -> bool {
        if let Some(min) = self.min_duration {
            if end.saturating_since(start) < min {
                return false;
            }
        }
        if let Some((from, until)) = self.window {
            if end < from || start > until {
                return false;
            }
        }
        true
    }

    /// Evaluates the filter against an index entry (no decoding).
    pub fn admits_extent(&self, extent: &EpisodeExtent) -> bool {
        self.admits(extent.start, extent.end)
    }

    /// Evaluates the filter against a decoded episode.
    pub fn admits_episode(&self, episode: &Episode) -> bool {
        self.admits(episode.start(), episode.end())
    }

    /// Rebuilds `trace` keeping only admitted episodes — the fallback for
    /// codecs without an extent index (the text codec). Session-level
    /// state (GC events, short-episode counts) is preserved.
    pub fn retain(&self, trace: SessionTrace) -> SessionTrace {
        if self.is_unrestricted() {
            return trace;
        }
        let mut b = SessionTraceBuilder::new(trace.meta().clone(), trace.symbols().clone());
        for episode in trace.episodes() {
            if self.admits_episode(episode) {
                // Ordering is preserved from an already-valid trace.
                let _ = b.push_episode(episode.clone());
            }
        }
        for gc in trace.gc_events() {
            b.push_gc(*gc);
        }
        b.add_short_episodes(trace.short_episode_count(), trace.short_episode_time());
        b.finish()
    }
}

/// How the extent index of an [`IndexedTrace`] was obtained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexHealth {
    /// A v2 footer was present, checksummed, and decoded.
    FooterValid,
    /// A legacy (v1) trace has no footer; the index was reconstructed by
    /// a scan.
    FooterAbsent,
    /// A v2 footer was present but unusable (the reason is attached); the
    /// index was reconstructed by a scan.
    FooterInvalid(String),
    /// Salvage mode: the index was rebuilt while scanning a damaged
    /// trace.
    SalvageScan,
}

impl IndexHealth {
    /// One-line human-readable description (used by `lagalyzer lint`).
    pub fn describe(&self) -> String {
        match self {
            IndexHealth::FooterValid => "footer valid".into(),
            IndexHealth::FooterAbsent => {
                "no footer (legacy trace, index reconstructed by scan)".into()
            }
            IndexHealth::FooterInvalid(reason) => {
                format!("footer invalid ({reason}), index reconstructed by scan")
            }
            IndexHealth::SalvageScan => "index rebuilt by salvage scan".into(),
        }
    }
}

impl std::fmt::Display for IndexHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Encodes the footer (leading magic through trailing magic) as the byte
/// block the writer appends after the last record.
///
/// Layout:
///
/// ```text
/// magic        8 bytes  b"LGLZIDX\x01"
/// payload len  varint
/// payload      extent count, then per extent: offset (delta from the
///              previous extent's end; first is absolute), length, id,
///              start (delta from the previous start; first is absolute),
///              duration, interval count, sample count, skip count
/// checksum     8 bytes LE FNV-1a over magic..payload
/// length       8 bytes LE total footer size (magic through magic)
/// magic        8 bytes  b"LGLZIDX\x01" (locator, scanned from the end)
/// ```
pub(crate) fn encode_footer(extents: &[EpisodeExtent]) -> Result<Vec<u8>, TraceError> {
    let mut payload = Vec::with_capacity(16 + extents.len() * 8);
    encode_extents_into(extents, &mut payload)?;
    let mut footer = Vec::with_capacity(payload.len() + FOOTER_FIXED + 4);
    footer.extend_from_slice(FOOTER_MAGIC);
    varint::write_u64(&mut footer, payload.len() as u64)?;
    footer.extend_from_slice(&payload);
    let checksum = fnv1a(&footer);
    footer.extend_from_slice(&checksum.to_le_bytes());
    let total = footer.len() as u64 + 16;
    footer.extend_from_slice(&total.to_le_bytes());
    footer.extend_from_slice(FOOTER_MAGIC);
    Ok(footer)
}

/// Locates and decodes the footer of a v2 trace whose record-and-footer
/// region ends at `payload_end` (i.e. just before the trailer checksum,
/// when one exists).
///
/// Returns the footer's start offset and the decoded extent table, or a
/// human-readable reason the footer cannot be used (callers then fall
/// back to a scan).
pub(crate) fn locate_footer(
    bytes: &[u8],
    payload_end: usize,
) -> Result<(usize, Vec<EpisodeExtent>), String> {
    if payload_end < FOOTER_FIXED + 1 || payload_end > bytes.len() {
        return Err("input too short for a footer".into());
    }
    if &bytes[payload_end - 8..payload_end] != FOOTER_MAGIC {
        return Err("no trailing footer magic".into());
    }
    let total = u64::from_le_bytes(
        bytes[payload_end - 16..payload_end - 8]
            .try_into()
            .expect("8-byte slice"),
    );
    if total < (FOOTER_FIXED + 1) as u64 || total > payload_end as u64 {
        return Err(format!("implausible footer length {total}"));
    }
    let footer_start = payload_end - total as usize;
    let checked_end = payload_end - 24;
    if &bytes[footer_start..footer_start + 8] != FOOTER_MAGIC {
        return Err("no leading footer magic".into());
    }
    let stored = u64::from_le_bytes(
        bytes[checked_end..checked_end + 8]
            .try_into()
            .expect("8-byte slice"),
    );
    let computed = fnv1a(&bytes[footer_start..checked_end]);
    if stored != computed {
        return Err("footer checksum mismatch".into());
    }
    let mut pos = footer_start + 8;
    let payload_len = take_u64(bytes, &mut pos, checked_end)
        .map_err(|e| format!("bad footer payload length: {e}"))?;
    if pos + payload_len as usize != checked_end {
        return Err("footer payload length disagrees with footer length".into());
    }
    let extents = decode_extents(bytes, &mut pos, checked_end, footer_start as u64)
        .map_err(|e| format!("bad extent table: {e}"))?;
    if pos != checked_end {
        return Err("trailing bytes after the last extent".into());
    }
    Ok((footer_start, extents))
}

/// Serializes an extent table (count, then delta-coded extents) into
/// `payload` — the shared wire shape of the v2 footer and the corpus
/// extent index.
pub(crate) fn encode_extents_into(
    extents: &[EpisodeExtent],
    payload: &mut Vec<u8>,
) -> Result<(), TraceError> {
    varint::write_u64(payload, extents.len() as u64)?;
    let mut prev_end = 0u64;
    let mut prev_start = 0u64;
    for e in extents {
        varint::write_u64(payload, e.offset - prev_end)?;
        varint::write_u64(payload, e.len)?;
        varint::write_u32(payload, e.id.as_raw())?;
        varint::write_u64(payload, e.start.as_nanos() - prev_start)?;
        varint::write_u64(payload, e.duration().as_nanos())?;
        varint::write_u64(payload, u64::from(e.intervals))?;
        varint::write_u64(payload, u64::from(e.samples))?;
        varint::write_u64(payload, u64::from(e.skips))?;
        prev_end = e.offset + e.len;
        prev_start = e.start.as_nanos();
    }
    Ok(())
}

/// Decodes the extent-table payload at `bytes[*pos..end]`, advancing
/// `pos` past it; extents must be ascending, non-overlapping, and
/// contained in `[0, limit)`.
pub(crate) fn decode_extents(
    bytes: &[u8],
    pos: &mut usize,
    end: usize,
    limit: u64,
) -> Result<Vec<EpisodeExtent>, TraceError> {
    let count = take_u64(bytes, pos, end)?;
    if count > MAX_RECORDS {
        return Err(TraceError::corrupt(
            "extent table",
            format!("{count} extents exceeds cap"),
        ));
    }
    let mut extents = Vec::with_capacity(count.min(4096) as usize);
    let mut prev_end = 0u64;
    let mut prev_start = 0u64;
    for _ in 0..count {
        let offset = prev_end
            .checked_add(take_u64(bytes, pos, end)?)
            .ok_or_else(|| TraceError::corrupt("extent table", "offset overflow"))?;
        let len = take_u64(bytes, pos, end)?;
        let id = EpisodeId::from_raw(take_u32(bytes, pos, end)?);
        let start = prev_start
            .checked_add(take_u64(bytes, pos, end)?)
            .ok_or_else(|| TraceError::corrupt("extent table", "timestamp overflow"))?;
        let duration = take_u64(bytes, pos, end)?;
        let intervals = take_u64(bytes, pos, end)?;
        let samples = take_u64(bytes, pos, end)?;
        let skips = take_u64(bytes, pos, end)?;
        let span_end = offset
            .checked_add(len)
            .ok_or_else(|| TraceError::corrupt("extent table", "length overflow"))?;
        if len < 2 || span_end > limit {
            return Err(TraceError::corrupt(
                "extent table",
                format!("extent {offset}+{len} outside the record region"),
            ));
        }
        let end_ts = start
            .checked_add(duration)
            .ok_or_else(|| TraceError::corrupt("extent table", "duration overflow"))?;
        extents.push(EpisodeExtent {
            offset,
            len,
            id,
            start: TimeNs::from_nanos(start),
            end: TimeNs::from_nanos(end_ts),
            intervals: intervals.min(u64::from(u32::MAX)) as u32,
            samples: samples.min(u64::from(u32::MAX)) as u32,
            skips: skips.min(u64::from(u32::MAX)) as u32,
        });
        prev_end = span_end;
        prev_start = start;
    }
    Ok(extents)
}

/// Reads one varint `u64` from `bytes[*pos..end]`, advancing `pos`.
fn take_u64(bytes: &[u8], pos: &mut usize, end: usize) -> Result<u64, TraceError> {
    varint::read_u64_at(bytes, pos, end)
}

/// Reads one varint `u32` from `bytes[*pos..end]`, advancing `pos`.
fn take_u32(bytes: &[u8], pos: &mut usize, end: usize) -> Result<u32, TraceError> {
    varint::read_u32_at(bytes, pos, end)
}

fn take_byte(
    bytes: &[u8],
    pos: &mut usize,
    end: usize,
    context: &'static str,
) -> Result<u8, TraceError> {
    if *pos >= end {
        return Err(TraceError::corrupt(context, "unexpected end of input"));
    }
    let b = bytes[*pos];
    *pos += 1;
    Ok(b)
}

fn take_bool(
    bytes: &[u8],
    pos: &mut usize,
    end: usize,
    context: &'static str,
) -> Result<bool, TraceError> {
    match take_byte(bytes, pos, end, context)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(TraceError::corrupt(context, format!("bad bool {other}"))),
    }
}

/// Session-level records accumulated while opening an indexed trace.
struct SessionLevel {
    symbols: SymbolTable,
    gc_events: Vec<GcEvent>,
    short_count: u64,
    short_time: DurationNs,
}

impl SessionLevel {
    fn new() -> SessionLevel {
        SessionLevel {
            symbols: SymbolTable::new(),
            gc_events: Vec::new(),
            short_count: 0,
            short_time: DurationNs::ZERO,
        }
    }

    /// Absorbs a record found *outside* every episode extent; episode
    /// records there mean the index (or the trace) is corrupt.
    fn absorb(&mut self, record: TraceRecord) -> Result<(), TraceError> {
        match record {
            TraceRecord::Symbol { id, name } => {
                let interned = self.symbols.intern_owned(name);
                if interned != id {
                    return Err(TraceError::corrupt("symbol record", "non-dense symbol ids"));
                }
            }
            TraceRecord::Gc(gc) => self.gc_events.push(gc),
            TraceRecord::ShortEpisodes { count, total } => {
                self.short_count += count;
                self.short_time += total;
            }
            _ => {
                return Err(TraceError::corrupt(
                    "trace layout",
                    "episode record outside an indexed extent",
                ))
            }
        }
        Ok(())
    }
}

/// What a skimmed in-episode record contributes to its extent.
enum SkimEvent {
    Enter { at: u64 },
    Exit { at: u64 },
    Sample,
    End,
    NestedBegin,
    SessionLevel,
}

/// Skims one record's structure without materializing symbol strings or
/// sample stacks — just enough to validate boundaries and pull the
/// timestamps the extent needs.
fn skim_record(bytes: &[u8], pos: &mut usize, end: usize) -> Result<SkimEvent, TraceError> {
    const MAX_VEC: u64 = 1 << 24;
    match take_byte(bytes, pos, end, "record tag")? {
        tag::ENTER => {
            let kind = take_byte(bytes, pos, end, "enter record")?;
            if IntervalKind::from_tag(kind).is_none() {
                return Err(TraceError::corrupt(
                    "enter record",
                    format!("bad kind tag {kind}"),
                ));
            }
            if take_bool(bytes, pos, end, "enter record")? {
                take_u32(bytes, pos, end)?;
                take_u32(bytes, pos, end)?;
            }
            Ok(SkimEvent::Enter {
                at: take_u64(bytes, pos, end)?,
            })
        }
        tag::EXIT => Ok(SkimEvent::Exit {
            at: take_u64(bytes, pos, end)?,
        }),
        tag::SAMPLE => {
            take_u64(bytes, pos, end)?;
            let n_threads = take_u64(bytes, pos, end)?;
            if n_threads > MAX_VEC {
                return Err(TraceError::corrupt("sample record", "thread count cap"));
            }
            for _ in 0..n_threads {
                take_u32(bytes, pos, end)?;
                let state = take_byte(bytes, pos, end, "sample record")?;
                if ThreadState::from_tag(state).is_none() {
                    return Err(TraceError::corrupt(
                        "sample record",
                        format!("bad state tag {state}"),
                    ));
                }
                let n_frames = take_u64(bytes, pos, end)?;
                if n_frames > MAX_VEC {
                    return Err(TraceError::corrupt("sample record", "frame count cap"));
                }
                for _ in 0..n_frames {
                    take_u32(bytes, pos, end)?;
                    take_u32(bytes, pos, end)?;
                    take_bool(bytes, pos, end, "sample record")?;
                }
            }
            Ok(SkimEvent::Sample)
        }
        tag::EP_END => Ok(SkimEvent::End),
        tag::EP_BEGIN => Ok(SkimEvent::NestedBegin),
        tag::SYMBOL | tag::GC | tag::SHORT => Ok(SkimEvent::SessionLevel),
        other => Err(TraceError::corrupt(
            "record tag",
            format!("unknown tag {other}"),
        )),
    }
}

/// Reconstructs the extent table by scanning exactly `declared` records
/// starting at `pos`: session-level records are fully decoded into
/// `session`, episode bodies are skimmed without materialization.
///
/// Returns the extents and the byte position just past the last record.
fn scan_extents(
    bytes: &[u8],
    mut pos: usize,
    payload_end: usize,
    declared: u64,
    session: &mut SessionLevel,
) -> Result<(Vec<EpisodeExtent>, usize), TraceError> {
    let mut extents = Vec::new();
    let mut decoded = 0u64;
    while decoded < declared {
        if pos >= payload_end {
            return Err(TraceError::corrupt(
                "record count",
                format!("declared {declared}, found {decoded}"),
            ));
        }
        if bytes[pos] == tag::EP_BEGIN {
            let begin_at = pos;
            pos += 1;
            let id = take_u32(bytes, &mut pos, payload_end)?;
            take_u32(bytes, &mut pos, payload_end)?; // thread
            decoded += 1;
            let mut first_enter = None;
            let mut last_exit = 0u64;
            let mut intervals = 0u64;
            let mut samples = 0u64;
            loop {
                if decoded >= declared {
                    return Err(TraceError::corrupt(
                        "episode extent",
                        "declared records end mid-episode",
                    ));
                }
                let event = skim_record(bytes, &mut pos, payload_end)?;
                decoded += 1;
                match event {
                    SkimEvent::Enter { at } => {
                        if first_enter.is_none() {
                            first_enter = Some(at);
                        }
                        intervals += 1;
                    }
                    SkimEvent::Exit { at } => last_exit = at,
                    SkimEvent::Sample => samples += 1,
                    SkimEvent::End => break,
                    SkimEvent::NestedBegin => {
                        return Err(TraceError::corrupt(
                            "episode extent",
                            "episode begins before the previous one ended",
                        ))
                    }
                    SkimEvent::SessionLevel => {
                        return Err(TraceError::corrupt(
                            "episode extent",
                            "session record inside an episode",
                        ))
                    }
                }
            }
            let start = first_enter
                .ok_or_else(|| TraceError::corrupt("episode extent", "episode has no intervals"))?;
            extents.push(EpisodeExtent {
                offset: begin_at as u64,
                len: (pos - begin_at) as u64,
                id: EpisodeId::from_raw(id),
                start: TimeNs::from_nanos(start),
                end: TimeNs::from_nanos(last_exit),
                intervals: intervals.min(u64::from(u32::MAX)) as u32,
                samples: samples.min(u64::from(u32::MAX)) as u32,
                skips: 0,
            });
        } else {
            let mut r = &bytes[pos..payload_end];
            let record = read_record(&mut r)?;
            pos = payload_end - r.len();
            decoded += 1;
            session.absorb(record)?;
        }
    }
    Ok((extents, pos))
}

/// Everything `open` derives from the raw bytes except the bytes
/// themselves.
struct Opened {
    meta: SessionMeta,
    session: SessionLevel,
    extents: Vec<EpisodeExtent>,
    health: IndexHealth,
    declared: u64,
    /// A decoded (but not yet content-validated) rollup section.
    rollup: Option<crate::rollup::Rollup>,
    /// The trailer hash's running state at the rollup section boundary —
    /// the content checksum a trustworthy rollup must carry. `None` when
    /// no section is framed (nothing to validate against).
    content_snapshot: Option<u64>,
}

/// A binary trace opened for indexed, zero-copy access.
///
/// Owns the raw bytes; episode payloads are borrowed by extent and only
/// decoded on demand. [`par_decode`](IndexedTrace::par_decode) rebuilds
/// the full [`SessionTrace`] by fanning extents over the worker pool —
/// the result is identical to the serial reader's for any job count.
///
/// ```
/// # use lagalyzer_model::prelude::*;
/// # use lagalyzer_trace::{binary, IndexedTrace};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let meta = SessionMeta {
/// #     application: "X".into(),
/// #     session: SessionId::from_raw(0),
/// #     gui_thread: ThreadId::from_raw(0),
/// #     end_to_end: DurationNs::from_secs(1),
/// #     filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
/// # };
/// # let trace = SessionTraceBuilder::new(meta, SymbolTable::new()).finish();
/// # let mut bytes = Vec::new();
/// # binary::write(&trace, &mut bytes)?;
/// let indexed = IndexedTrace::open(bytes)?;
/// assert_eq!(indexed.len(), 0);
/// let decoded = indexed.par_decode(4)?;
/// assert_eq!(decoded.meta().application, "X");
/// # Ok(())
/// # }
/// ```
pub struct IndexedTrace {
    bytes: Vec<u8>,
    meta: SessionMeta,
    symbols: SymbolTable,
    gc_events: Vec<GcEvent>,
    short_episode_count: u64,
    short_episode_time: DurationNs,
    extents: Vec<EpisodeExtent>,
    health: IndexHealth,
    salvage: Option<SalvageReport>,
    rollup: Option<crate::rollup::Rollup>,
}

impl IndexedTrace {
    /// Opens a clean binary trace from an owned byte buffer, verifying
    /// the trailer checksum and building (or loading) the extent index.
    ///
    /// # Errors
    ///
    /// Fails on anything the strict serial reader would reject: bad
    /// magic, an unsupported version, a checksum mismatch, or malformed
    /// records. A damaged *footer* alone is not fatal — the index falls
    /// back to a scan (see [`IndexedTrace::health`]).
    pub fn open(bytes: Vec<u8>) -> Result<IndexedTrace, TraceError> {
        let opened = Self::open_parts(&bytes)?;
        Ok(Self::assemble(bytes, opened, None))
    }

    /// Opens a possibly damaged binary trace: tries the strict indexed
    /// open first, then falls back to a full salvage scan that rebuilds
    /// the extent table from whatever episodes survive.
    ///
    /// The salvage report is available via
    /// [`salvage_report`](IndexedTrace::salvage_report) and mirrors the
    /// serial salvage path's report.
    ///
    /// # Errors
    ///
    /// Fails only on unrecoverable input: missing magic, or a header too
    /// damaged to establish the session metadata.
    pub fn open_salvage(bytes: Vec<u8>) -> Result<IndexedTrace, TraceError> {
        match Self::open_parts(&bytes) {
            Ok(opened) => {
                let report = SalvageReport {
                    episodes_recovered: opened.extents.len() as u64,
                    records_recovered: opened.declared,
                    checksum_ok: Some(true),
                    ..SalvageReport::default()
                };
                Ok(Self::assemble(bytes, opened, Some(report)))
            }
            Err(_) => {
                let (meta, tail, report, extents) = {
                    let mut stream = crate::stream::SalvageEpisodeStream::new(&bytes)?;
                    while stream.next_episode().is_some() {}
                    stream.into_parts()
                };
                Ok(IndexedTrace {
                    bytes,
                    meta,
                    symbols: tail.symbols,
                    gc_events: tail.gc_events,
                    short_episode_count: tail.short_episode_count,
                    short_episode_time: tail.short_episode_time,
                    extents,
                    health: IndexHealth::SalvageScan,
                    salvage: Some(report),
                    // Any rollup on a damaged file describes episodes that
                    // may not have survived salvage — never trust it.
                    rollup: None,
                })
            }
        }
    }

    fn assemble(bytes: Vec<u8>, opened: Opened, salvage: Option<SalvageReport>) -> IndexedTrace {
        // A rollup is only trusted when the extent index came from a valid
        // footer (the spans it was computed over) and its content checksum
        // matches the episode bytes actually present.
        let rollup = if opened.health == IndexHealth::FooterValid {
            match (opened.rollup, opened.content_snapshot) {
                (Some(r), Some(expected)) => {
                    crate::rollup::validate(r, expected, opened.extents.len())
                }
                _ => None,
            }
        } else {
            None
        };
        IndexedTrace {
            bytes,
            meta: opened.meta,
            symbols: opened.session.symbols,
            gc_events: opened.session.gc_events,
            short_episode_count: opened.session.short_count,
            short_episode_time: opened.session.short_time,
            extents: opened.extents,
            health: opened.health,
            salvage,
            rollup,
        }
    }

    fn open_parts(bytes: &[u8]) -> Result<Opened, TraceError> {
        if bytes.len() < 16 {
            return Err(TraceError::corrupt("magic", "input shorter than magic"));
        }
        if &bytes[..7] != MAGIC_PREFIX {
            return Err(TraceError::corrupt("magic", format!("{:?}", &bytes[..8])));
        }
        let version = bytes[7];
        if version != 1 && version != 2 {
            return Err(TraceError::UnsupportedVersion {
                found: u32::from(version),
            });
        }
        let payload_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[payload_end..].try_into().expect("8-byte slice"));
        // One pass serves two checks: when a rollup section is framed at
        // the back (v2 only), snapshot the running trailer hash at the
        // section boundary — the writer stamped that exact state into the
        // section as its content checksum, so the cache is validated
        // without a second pass over the payload.
        let section_start = if version >= 2 {
            crate::rollup::pre_locate(bytes, payload_end)
        } else {
            None
        };
        let split = section_start.unwrap_or(payload_end);
        let mut hash = crate::binary::Fnv1a::new();
        hash.update(&bytes[8..split]);
        let content_snapshot = section_start.map(|_| hash.finish());
        hash.update(&bytes[split..payload_end]);
        let computed = hash.finish();
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        let mut r = &bytes[8..payload_end];
        let meta = read_header(&mut r)?;
        let declared = varint::read_u64(&mut r)?;
        if declared > MAX_RECORDS {
            return Err(TraceError::corrupt(
                "record count",
                format!("{declared} exceeds cap"),
            ));
        }
        let records_start = payload_end - r.len();
        let mut session = SessionLevel::new();
        let mut rollup = None;
        let (extents, health) = if version >= 2 {
            // Peel the optional rollup section off the back first: the
            // footer (when present) sits directly below it. An unusable
            // section is simply dropped — the cache degrades, never the
            // decode.
            let peeled = crate::rollup::peel(bytes, payload_end);
            rollup = peeled.rollup.and_then(Result::ok);
            match locate_footer(bytes, peeled.end) {
                Ok((footer_start, extents)) => {
                    Self::decode_gaps(bytes, records_start, footer_start, &extents, &mut session)?;
                    (extents, IndexHealth::FooterValid)
                }
                Err(reason) => {
                    // The scan stops after `declared` records; whatever is
                    // left before the trailer is the unusable footer.
                    let (extents, _) =
                        scan_extents(bytes, records_start, payload_end, declared, &mut session)?;
                    (extents, IndexHealth::FooterInvalid(reason))
                }
            }
        } else {
            let (extents, end) =
                scan_extents(bytes, records_start, payload_end, declared, &mut session)?;
            if end != payload_end {
                // The serial reader would read a bogus trailer here and
                // fail its checksum; reject the same inputs.
                return Err(TraceError::corrupt(
                    "record count",
                    "trailing bytes after the declared records",
                ));
            }
            (extents, IndexHealth::FooterAbsent)
        };
        Ok(Opened {
            meta,
            session,
            extents,
            health,
            declared,
            rollup,
            content_snapshot,
        })
    }

    /// Decodes the regions *between* extents (and before the first /
    /// after the last) — the writer puts only session-level records
    /// there, so with a valid footer no episode byte is ever parsed.
    fn decode_gaps(
        bytes: &[u8],
        records_start: usize,
        records_end: usize,
        extents: &[EpisodeExtent],
        session: &mut SessionLevel,
    ) -> Result<(), TraceError> {
        let mut gap_start = records_start as u64;
        let spans = extents
            .iter()
            .map(|e| (e.offset, e.offset + e.len))
            .chain(std::iter::once((records_end as u64, records_end as u64)));
        for (span_start, span_end) in spans {
            if span_start < gap_start || span_end > records_end as u64 {
                return Err(TraceError::corrupt(
                    "extent table",
                    "extent outside the record region",
                ));
            }
            let mut r = &bytes[gap_start as usize..span_start as usize];
            while !r.is_empty() {
                session.absorb(read_record(&mut r)?)?;
            }
            gap_start = span_end;
        }
        Ok(())
    }

    /// The session metadata from the header.
    pub fn meta(&self) -> &SessionMeta {
        &self.meta
    }

    /// The fully interned symbol table (session-level records are decoded
    /// at open time).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The extent index, one entry per episode in dispatch order.
    pub fn extents(&self) -> &[EpisodeExtent] {
        &self.extents
    }

    /// Session-level GC events (decoded at open time).
    pub fn gc_events(&self) -> &[GcEvent] {
        &self.gc_events
    }

    /// Episodes below the tracer-side filter threshold (counted, not
    /// recorded individually).
    pub fn short_episode_count(&self) -> u64 {
        self.short_episode_count
    }

    /// Total time spent in short (untraced) episodes.
    pub fn short_episode_time(&self) -> DurationNs {
        self.short_episode_time
    }

    /// How the extent index was obtained.
    pub fn health(&self) -> &IndexHealth {
        &self.health
    }

    /// The salvage report when opened via
    /// [`open_salvage`](IndexedTrace::open_salvage); `None` for a strict
    /// open.
    pub fn salvage_report(&self) -> Option<&SalvageReport> {
        self.salvage.as_ref()
    }

    /// The persisted rollup, when one is present **and** trustworthy: the
    /// footer validated, the summary table is 1:1 with the extent index,
    /// and the content checksum matches the episode bytes. A stale,
    /// damaged, or absent rollup yields `None` — callers fall back to the
    /// cold decode path.
    pub fn rollup(&self) -> Option<&crate::rollup::Rollup> {
        self.rollup.as_ref()
    }

    /// Number of indexed episodes.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// `true` when the trace has no traced episodes.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Borrows episode `i`'s record bytes zero-copy.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range (extent byte ranges themselves are
    /// validated at open time).
    pub fn episode_bytes(&self, i: usize) -> &[u8] {
        let e = &self.extents[i];
        &self.bytes[e.offset as usize..(e.offset + e.len) as usize]
    }

    /// Randomly accesses episode `i`: strictly decodes just its extent.
    ///
    /// # Errors
    ///
    /// Fails when `i` is out of range or the extent's bytes do not decode
    /// to a well-formed episode (possible only when the index disagrees
    /// with the records — e.g. a handcrafted footer).
    pub fn decode_episode(&self, i: usize) -> Result<Episode, TraceError> {
        self.decode_episode_with(i, &mut DecodeScratch::default())
    }

    /// Decodes episode `i` reusing per-worker `scratch` — the hot inner
    /// loop of [`par_decode`](IndexedTrace::par_decode).
    ///
    /// On error the scratch is reset, so a reused builder can never leak a
    /// failed episode's partial state into the next decode.
    fn decode_episode_with(
        &self,
        i: usize,
        scratch: &mut DecodeScratch,
    ) -> Result<Episode, TraceError> {
        let extent = *self.extents.get(i).ok_or_else(|| {
            TraceError::corrupt("episode extent", format!("no episode {i} in the index"))
        })?;
        let span = &self.bytes[extent.offset as usize..(extent.offset + extent.len) as usize];
        decode_extent(span, &extent, scratch)
    }
}

/// Strictly decodes one episode from its extent's byte span, reusing the
/// per-worker `scratch`. Shared by [`IndexedTrace`] and the corpus
/// reader — the corpus stores the same record bytes, so sharing the
/// decoder is what makes corpus decodes byte-identical to per-file ones.
///
/// On error the scratch is reset, so a reused builder can never leak a
/// failed episode's partial state into the next decode.
pub(crate) fn decode_extent(
    span: &[u8],
    extent: &EpisodeExtent,
    scratch: &mut DecodeScratch,
) -> Result<Episode, TraceError> {
    let result = decode_extent_inner(span, extent, scratch);
    if result.is_err() {
        scratch.tree.reset();
    }
    result
}

fn decode_extent_inner(
    span: &[u8],
    extent: &EpisodeExtent,
    scratch: &mut DecodeScratch,
) -> Result<Episode, TraceError> {
    {
        const MAX_VEC: u64 = 1 << 24;
        let end = span.len();
        let mut pos = 0usize;
        if take_byte(span, &mut pos, end, "record tag")? != tag::EP_BEGIN {
            // Match the strict reader: a malformed first record reports
            // its own corruption, a well-formed non-begin one is a layout
            // error.
            read_record(&mut &span[..])?;
            return Err(TraceError::corrupt(
                "episode extent",
                "extent does not start with an episode begin",
            ));
        }
        let id = EpisodeId::from_raw(take_u32(span, &mut pos, end)?);
        let thread = ThreadId::from_raw(take_u32(span, &mut pos, end)?);
        if id != extent.id {
            return Err(TraceError::corrupt(
                "episode extent",
                format!(
                    "index says id {}, records say {}",
                    extent.id.as_raw(),
                    id.as_raw()
                ),
            ));
        }
        // The extent's counts size both arenas in one allocation; they are
        // capacity hints only (a lying footer still decodes correctly, its
        // growth just paced by the actual input like the serial reader's).
        let tree = &mut scratch.tree;
        tree.reserve_nodes((extent.intervals as usize).min(1 << 20));
        let mut samples: Vec<SampleSnapshot> =
            Vec::with_capacity((extent.samples as usize).min(1024));
        loop {
            if pos >= end {
                return Err(TraceError::corrupt(
                    "episode extent",
                    "extent ends before the episode does",
                ));
            }
            match take_byte(span, &mut pos, end, "record tag")? {
                tag::ENTER => {
                    let kind_tag = take_byte(span, &mut pos, end, "enter record")?;
                    let kind = IntervalKind::from_tag(kind_tag).ok_or_else(|| {
                        TraceError::corrupt("enter record", format!("bad kind tag {kind_tag}"))
                    })?;
                    let symbol = if take_bool(span, &mut pos, end, "enter record")? {
                        Some(MethodRef {
                            class: SymbolId::from_raw(take_u32(span, &mut pos, end)?),
                            method: SymbolId::from_raw(take_u32(span, &mut pos, end)?),
                        })
                    } else {
                        None
                    };
                    let at = TimeNs::from_nanos(take_u64(span, &mut pos, end)?);
                    tree.enter(kind, symbol, at)?;
                }
                tag::EXIT => {
                    tree.exit(TimeNs::from_nanos(take_u64(span, &mut pos, end)?))?;
                }
                tag::SAMPLE => {
                    let time = TimeNs::from_nanos(take_u64(span, &mut pos, end)?);
                    let n_threads = take_u64(span, &mut pos, end)?;
                    if n_threads > MAX_VEC {
                        return Err(TraceError::corrupt("sample record", "thread count cap"));
                    }
                    let mut threads = Vec::with_capacity(n_threads.min(1024) as usize);
                    for _ in 0..n_threads {
                        let thread = ThreadId::from_raw(take_u32(span, &mut pos, end)?);
                        let state_tag = take_byte(span, &mut pos, end, "sample record")?;
                        let state = ThreadState::from_tag(state_tag).ok_or_else(|| {
                            TraceError::corrupt(
                                "sample record",
                                format!("bad state tag {state_tag}"),
                            )
                        })?;
                        let n_frames = take_u64(span, &mut pos, end)?;
                        if n_frames > MAX_VEC {
                            return Err(TraceError::corrupt("sample record", "frame count cap"));
                        }
                        let mut stack = Vec::with_capacity(n_frames.min(1024) as usize);
                        for _ in 0..n_frames {
                            let method = MethodRef {
                                class: SymbolId::from_raw(take_u32(span, &mut pos, end)?),
                                method: SymbolId::from_raw(take_u32(span, &mut pos, end)?),
                            };
                            let native = take_bool(span, &mut pos, end, "sample record")?;
                            stack.push(StackFrame { method, native });
                        }
                        threads.push(ThreadSample::new(thread, state, stack));
                    }
                    samples.push(SampleSnapshot::new(time, threads));
                }
                tag::EP_END => break,
                // Salvage-derived extents may interleave session-level
                // records inside an episode span; they were absorbed at
                // open time, so decode them with the strict reader (same
                // validation, cold path) and step over them here.
                tag::SYMBOL | tag::GC | tag::SHORT => {
                    let mut r = &span[pos - 1..end];
                    read_record(&mut r)?;
                    pos = end - r.len();
                }
                tag::EP_BEGIN => {
                    return Err(TraceError::corrupt(
                        "episode extent",
                        "nested episode begin inside an extent",
                    ));
                }
                other => {
                    return Err(TraceError::corrupt(
                        "record tag",
                        format!("unknown tag {other}"),
                    ));
                }
            }
        }
        if pos != end {
            return Err(TraceError::corrupt(
                "episode extent",
                "trailing bytes after the episode end",
            ));
        }
        let finished = tree.finish_reset()?;
        Ok(EpisodeBuilder::new(id, thread)
            .tree(finished)
            .samples(samples)
            .build()?)
    }
}

impl IndexedTrace {
    /// Decodes the whole session by fanning extents over `jobs` worker
    /// threads. The result is identical to the serial reader's (or, after
    /// [`open_salvage`](IndexedTrace::open_salvage), to the serial
    /// salvage path's) for any job count.
    ///
    /// # Errors
    ///
    /// Propagates the first extent decode failure.
    pub fn par_decode(&self, jobs: usize) -> Result<SessionTrace, TraceError> {
        self.par_decode_filtered(jobs, &EpisodeFilter::default())
    }

    /// Like [`par_decode`](IndexedTrace::par_decode), but only decodes
    /// episodes the filter admits — excluded episodes' bytes are never
    /// parsed. Session-level state (GC events, short-episode counts) is
    /// always preserved.
    ///
    /// Each worker thread keeps one `DecodeScratch` alive across every
    /// extent shard it claims and decodes its shard into an
    /// `EpisodeFragment`; fragments are then merged structurally in
    /// shard order (one `Vec::append` each) instead of re-pushing every
    /// episode through a single serial builder. Ordering is enforced
    /// inside the fragments as the workers fill them, so the merge only
    /// checks shard boundaries — the union of those checks is exactly the
    /// serial reader's adjacent-pair validation.
    ///
    /// # Errors
    ///
    /// Propagates the first (in episode order) extent decode failure.
    pub fn par_decode_filtered(
        &self,
        jobs: usize,
        filter: &EpisodeFilter,
    ) -> Result<SessionTrace, TraceError> {
        // After `open_salvage`, ordering was already enforced during the
        // scan; mirror the serial salvage path and drop defensively
        // instead of failing.
        let lenient = self.salvage.is_some();
        let shards = if filter.is_unrestricted() {
            // Skip materializing an index vector when every extent is
            // admitted: shard the extent table directly.
            map_shards_init(self.extents.len(), jobs, DecodeScratch::default, |s, r| {
                self.decode_fragment(r, None, s, lenient)
            })
        } else {
            let indices: Vec<usize> = (0..self.extents.len())
                .filter(|&i| filter.admits_extent(&self.extents[i]))
                .collect();
            map_shards_init(indices.len(), jobs, DecodeScratch::default, |s, r| {
                self.decode_fragment(r, Some(&indices), s, lenient)
            })
        };
        let fragments = shards
            .into_iter()
            .collect::<Result<Vec<EpisodeFragment>, TraceError>>()?;
        let mut b = SessionTraceBuilder::new(self.meta.clone(), self.symbols.clone());
        b.reserve_episodes(fragments.iter().map(EpisodeFragment::len).sum());
        for fragment in fragments {
            if lenient {
                b.append_fragment_lenient(fragment);
            } else {
                b.append_fragment(fragment)?;
            }
        }
        for gc in &self.gc_events {
            b.push_gc(*gc);
        }
        b.add_short_episodes(self.short_episode_count, self.short_episode_time);
        Ok(b.finish())
    }

    /// Decodes one shard of extent slots into an ordered fragment.
    ///
    /// `slots` indexes either the extent table directly (`indices` is
    /// `None`, the unrestricted fast path) or a precomputed list of
    /// filter-admitted extent indices.
    fn decode_fragment(
        &self,
        slots: Range<usize>,
        indices: Option<&[usize]>,
        scratch: &mut DecodeScratch,
        lenient: bool,
    ) -> Result<EpisodeFragment, TraceError> {
        let mut fragment = EpisodeFragment::with_capacity(slots.len());
        for slot in slots {
            let i = indices.map_or(slot, |ix| ix[slot]);
            let episode = self.decode_episode_with(i, scratch)?;
            if lenient {
                fragment.push_lenient(episode);
            } else {
                fragment.push(episode)?;
            }
        }
        Ok(fragment)
    }

    /// Decodes exactly the extents named by `indices`, in the given order,
    /// never touching any other episode's bytes — the skip-decode path an
    /// analysis uses to revisit a handful of flagged episodes (e.g.
    /// `outliers --explain`) without paying for the whole file.
    ///
    /// On a salvaged trace, extents whose bytes no longer decode are
    /// skipped (mirroring the lenient decode paths), so the result may be
    /// shorter than `indices`.
    ///
    /// # Errors
    ///
    /// On a clean trace, propagates the first decode failure (including
    /// out-of-range indices).
    pub fn par_decode_subset(
        &self,
        jobs: usize,
        indices: &[usize],
    ) -> Result<Vec<Episode>, TraceError> {
        let lenient = self.salvage.is_some();
        let shards = map_shards_init(indices.len(), jobs, DecodeScratch::default, |s, r| {
            let mut episodes = Vec::with_capacity(r.len());
            for slot in r {
                match self.decode_episode_with(indices[slot], s) {
                    Ok(episode) => episodes.push(episode),
                    Err(_) if lenient => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(episodes)
        });
        let mut out = Vec::with_capacity(indices.len());
        for shard in shards {
            out.extend(shard?);
        }
        Ok(out)
    }
}

/// Per-worker decode scratch, built once per worker thread and reused
/// across every extent it decodes.
///
/// The interval-tree builder's open-interval stack survives between
/// episodes ([`IntervalTreeBuilder::finish_reset`] hands the node arena to
/// the finished tree but keeps the stack); the arena itself is pre-sized
/// per episode from the extent's interval count, so a decode makes one
/// node allocation instead of a geometric growth series.
#[derive(Default)]
pub(crate) struct DecodeScratch {
    tree: IntervalTreeBuilder,
}

/// Cheap index-health probe for diagnostics (`lagalyzer lint`): reports
/// how an indexed open of `bytes` would obtain its extent table, without
/// decoding any records. `None` when the input is not a binary trace.
pub fn probe_health(bytes: &[u8]) -> Option<IndexHealth> {
    if bytes.len() < 16 || &bytes[..7] != MAGIC_PREFIX {
        return None;
    }
    if bytes[7] < 2 {
        return Some(IndexHealth::FooterAbsent);
    }
    let peeled = crate::rollup::peel(bytes, bytes.len() - 8);
    match locate_footer(bytes, peeled.end) {
        Ok(_) => Some(IndexHealth::FooterValid),
        Err(reason) => Some(IndexHealth::FooterInvalid(reason)),
    }
}

/// Cheap rollup-health probe for diagnostics (`lagalyzer lint` and the
/// `LA014` check rule): reports whether `bytes` carries a rollup section
/// and whether it would be trusted, without decoding any episode. `None`
/// when the input is not a v2 binary trace (v1 has no section region).
pub fn probe_rollup(bytes: &[u8]) -> Option<crate::rollup::RollupHealth> {
    use crate::rollup::RollupHealth;
    if bytes.len() < 16 || &bytes[..7] != MAGIC_PREFIX || bytes[7] < 2 {
        return None;
    }
    let payload_end = bytes.len() - 8;
    let peeled = crate::rollup::peel(bytes, payload_end);
    let section_bytes = (payload_end - peeled.end) as u64;
    Some(match peeled.rollup {
        None => RollupHealth::Absent,
        Some(Err(reason)) => RollupHealth::Stale {
            reason,
            section_bytes,
        },
        Some(Ok(rollup)) => match locate_footer(bytes, peeled.end) {
            Err(reason) => RollupHealth::Stale {
                reason: format!("extent footer unusable ({reason})"),
                section_bytes,
            },
            Ok((_, extents)) => {
                let expected = crate::rollup::content_checksum(&bytes[8..peeled.end]);
                if crate::rollup::validate(rollup, expected, extents.len()).is_some() {
                    RollupHealth::Valid { section_bytes }
                } else {
                    RollupHealth::Stale {
                        reason: "content checksum mismatch".into(),
                        section_bytes,
                    }
                }
            }
        },
    })
}
