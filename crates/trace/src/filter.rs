//! The tracer-side episode filter.
//!
//! To reduce measurement overhead and perturbation, LiLa automatically
//! filters out episodes shorter than 3 ms; LagAlyzer never sees those
//! episodes, only how many occurred (paper §IV-A, Table III column
//! "< 3ms"). [`TraceFilter`] reproduces that behaviour at the boundary
//! between the simulator (standing in for the instrumented JVM) and the
//! trace writer.

use lagalyzer_model::prelude::*;

/// Admits episodes at or above a duration threshold, counting the rest.
///
/// ```
/// use lagalyzer_model::prelude::*;
/// use lagalyzer_trace::TraceFilter;
///
/// # fn main() -> Result<(), ModelError> {
/// let mut filter = TraceFilter::new(DurationNs::TRACE_FILTER_DEFAULT);
/// let mut b = IntervalTreeBuilder::new();
/// b.enter(IntervalKind::Dispatch, None, TimeNs::ZERO)?;
/// b.exit(TimeNs::from_millis(1))?;
/// let short = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
///     .tree(b.finish()?)
///     .build()?;
/// assert!(filter.admit(short).is_none());
/// assert_eq!(filter.dropped(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TraceFilter {
    threshold: DurationNs,
    dropped: u64,
    dropped_time: DurationNs,
}

impl TraceFilter {
    /// Creates a filter with the given threshold (paper default: 3 ms).
    pub fn new(threshold: DurationNs) -> Self {
        TraceFilter {
            threshold,
            dropped: 0,
            dropped_time: DurationNs::ZERO,
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> DurationNs {
        self.threshold
    }

    /// Passes `episode` through if it is long enough, otherwise counts and
    /// drops it. The tracer measures the episode either way, so dropped
    /// time is accumulated exactly.
    pub fn admit(&mut self, episode: Episode) -> Option<Episode> {
        if episode.duration() >= self.threshold {
            Some(episode)
        } else {
            self.dropped += 1;
            self.dropped_time += episode.duration();
            None
        }
    }

    /// How many episodes were dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total measured duration of the dropped episodes.
    pub fn dropped_time(&self) -> DurationNs {
        self.dropped_time
    }

    /// Resets the dropped counters, returning `(count, total time)`. Used
    /// when one filter instance is reused across sessions.
    pub fn take_dropped(&mut self) -> (u64, DurationNs) {
        (
            std::mem::take(&mut self.dropped),
            std::mem::take(&mut self.dropped_time),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn episode(id: u32, dur_ms: u64) -> Episode {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, TimeNs::ZERO).unwrap();
        b.exit(TimeNs::from_millis(dur_ms)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
            .tree(b.finish().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn threshold_is_inclusive() {
        let mut f = TraceFilter::new(DurationNs::from_millis(3));
        assert!(f.admit(episode(0, 3)).is_some());
        assert!(f.admit(episode(1, 2)).is_none());
        assert_eq!(f.dropped(), 1);
    }

    #[test]
    fn dropped_accumulates_and_takes() {
        let mut f = TraceFilter::new(DurationNs::from_millis(3));
        for i in 0..5 {
            let _ = f.admit(episode(i, 1));
        }
        assert_eq!(f.dropped(), 5);
        assert_eq!(f.dropped_time(), DurationNs::from_millis(5));
        assert_eq!(f.take_dropped(), (5, DurationNs::from_millis(5)));
        assert_eq!(f.dropped(), 0);
        assert_eq!(f.dropped_time(), DurationNs::ZERO);
    }

    #[test]
    fn zero_threshold_admits_everything() {
        let mut f = TraceFilter::new(DurationNs::ZERO);
        assert!(f.admit(episode(0, 0)).is_some());
        assert_eq!(f.dropped(), 0);
    }

    #[test]
    fn threshold_accessor() {
        let f = TraceFilter::new(DurationNs::from_millis(7));
        assert_eq!(f.threshold(), DurationNs::from_millis(7));
    }
}
