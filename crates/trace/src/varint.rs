//! LEB128 variable-length integer encoding for the binary codec.

use std::io::{Read, Write};

use crate::error::TraceError;

/// Writes `value` as unsigned LEB128.
pub fn write_u64<W: Write>(w: &mut W, mut value: u64) -> Result<(), TraceError> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// The encoded length of `value` in bytes (always 1..=10).
pub fn len_u64(mut value: u64) -> u64 {
    let mut n = 1;
    while value >= 0x80 {
        value >>= 7;
        n += 1;
    }
    n
}

/// Reads an unsigned LEB128 value.
///
/// Rejects over-long encodings: more than 10 bytes, payload bits that
/// overflow `u64`, and non-minimal forms (a continuation chain whose final
/// byte contributes no payload, e.g. `[0x80, 0x00]` for zero). The writer
/// only ever produces minimal encodings, so every accepted byte string has
/// exactly one decoding — a property the salvage resynchronizer relies on.
pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let byte = buf[0];
        if shift >= 64 {
            return Err(TraceError::corrupt("varint", "more than 10 bytes"));
        }
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(TraceError::corrupt("varint", "overflows u64"));
        }
        if shift > 0 && payload == 0 && byte & 0x80 == 0 {
            return Err(TraceError::corrupt("varint", "over-long encoding"));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Writes a `u32` via the `u64` encoding.
pub fn write_u32<W: Write>(w: &mut W, value: u32) -> Result<(), TraceError> {
    write_u64(w, u64::from(value))
}

/// Reads a `u32`, rejecting values out of range.
pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, TraceError> {
    let v = read_u64(r)?;
    u32::try_from(v).map_err(|_| TraceError::corrupt("varint", format!("{v} overflows u32")))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> Result<(), TraceError> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a length-prefixed UTF-8 string, with a sanity cap on its length.
///
/// The buffer is filled through [`Read::take`], so a corrupt length prefix
/// never allocates more than the bytes actually present in the input: a
/// prefix larger than the remaining input fails with an I/O error after
/// reading (and allocating for) only what exists.
pub fn read_str<R: Read>(r: &mut R) -> Result<String, TraceError> {
    const MAX_LEN: u64 = 1 << 20;
    let len = read_u64(r)?;
    if len > MAX_LEN {
        return Err(TraceError::corrupt(
            "string",
            format!("length {len} exceeds cap"),
        ));
    }
    let mut buf = Vec::new();
    let got = r.take(len).read_to_end(&mut buf)?;
    if (got as u64) < len {
        return Err(TraceError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("string length {len} exceeds remaining input ({got} bytes)"),
        )));
    }
    String::from_utf8(buf).map_err(|e| TraceError::corrupt("string", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        read_u64(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn u64_round_trips() {
        for v in [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            assert_eq!(round_trip(v), v);
        }
    }

    #[test]
    fn encoding_is_minimal_length() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127).unwrap();
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128).unwrap();
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn truncated_input_is_io_error() {
        let buf = [0x80u8];
        assert!(matches!(
            read_u64(&mut buf.as_slice()),
            Err(TraceError::Io(_))
        ));
    }

    #[test]
    fn overlong_encoding_rejected() {
        let buf = [0x80u8; 11];
        assert!(matches!(
            read_u64(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn u64_overflow_rejected() {
        // 10 bytes whose final byte carries more than 1 bit of payload.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(matches!(
            read_u64(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn non_minimal_encodings_rejected() {
        // Each of these decodes to a small value through a longer-than-
        // minimal chain; the canonical writer never produces them.
        for adversarial in [
            &[0x80, 0x00][..],             // 0 in two bytes
            &[0xff, 0x00][..],             // 127 in two bytes
            &[0x80, 0x80, 0x00][..],       // 0 in three bytes
            &[0x81, 0x80, 0x80, 0x00][..], // 1 with trailing zero groups
        ] {
            assert!(
                matches!(
                    read_u64(&mut &adversarial[..]),
                    Err(TraceError::Corrupt { .. })
                ),
                "accepted over-long encoding {adversarial:?}"
            );
        }
        // The canonical single-byte zero still decodes.
        assert_eq!(read_u64(&mut &[0x00u8][..]).unwrap(), 0);
    }

    #[test]
    fn string_length_beyond_remaining_input_is_bounded() {
        // Length prefix claims 1 MiB but only 3 bytes follow: the reader
        // must fail with EOF after touching just those 3 bytes instead of
        // allocating the full claimed length up front.
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 20).unwrap();
        buf.extend_from_slice(b"abc");
        assert!(matches!(
            read_str(&mut buf.as_slice()),
            Err(TraceError::Io(_))
        ));
    }

    #[test]
    fn adversarial_byte_strings_never_panic() {
        // A grab bag of short hostile inputs: decoding must return, never
        // panic or hang.
        let cases: &[&[u8]] = &[
            &[],
            &[0x80],
            &[0xff; 16],
            &[
                0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01,
            ],
            &[0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f],
        ];
        for bytes in cases {
            let _ = read_u64(&mut &bytes[..]);
            let _ = read_u32(&mut &bytes[..]);
            let _ = read_str(&mut &bytes[..]);
        }
    }

    #[test]
    fn u32_range_check() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1).unwrap();
        assert!(matches!(
            read_u32(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn strings_round_trip() {
        for s in ["", "a", "javax.swing.JComboBox", "üñïçødé"] {
            let mut buf = Vec::new();
            write_str(&mut buf, s).unwrap();
            assert_eq!(read_str(&mut buf.as_slice()).unwrap(), s);
        }
    }

    #[test]
    fn oversized_string_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 21).unwrap();
        assert!(matches!(
            read_str(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_str(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }
}
