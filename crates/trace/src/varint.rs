//! LEB128 variable-length integer encoding for the binary codec.

use std::io::{Read, Write};

use crate::error::TraceError;

/// Writes `value` as unsigned LEB128.
pub fn write_u64<W: Write>(w: &mut W, mut value: u64) -> Result<(), TraceError> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// The encoded length of `value` in bytes (always 1..=10).
pub fn len_u64(mut value: u64) -> u64 {
    let mut n = 1;
    while value >= 0x80 {
        value >>= 7;
        n += 1;
    }
    n
}

/// Reads an unsigned LEB128 value.
///
/// Rejects over-long encodings: more than 10 bytes, payload bits that
/// overflow `u64`, and non-minimal forms (a continuation chain whose final
/// byte contributes no payload, e.g. `[0x80, 0x00]` for zero). The writer
/// only ever produces minimal encodings, so every accepted byte string has
/// exactly one decoding — a property the salvage resynchronizer relies on.
pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        let byte = buf[0];
        if shift >= 64 {
            return Err(TraceError::corrupt("varint", "more than 10 bytes"));
        }
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(TraceError::corrupt("varint", "overflows u64"));
        }
        if shift > 0 && payload == 0 && byte & 0x80 == 0 {
            return Err(TraceError::corrupt("varint", "over-long encoding"));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Reads an unsigned LEB128 value from `bytes[*pos..end]`, advancing
/// `pos` past the encoding.
///
/// Semantics are byte-for-byte identical to [`read_u64`] — the same
/// truncation, >10-byte, overflow, and non-minimal rejections — but the
/// hot path decodes a whole word at a time instead of paying an
/// `io::Read` virtual dispatch and `read_exact` bounds dance per byte.
/// This is the decode hot path: an indexed episode decode reads one
/// varint every few bytes, and event timestamps routinely encode to 5–7
/// bytes.
///
/// # Errors
///
/// Fails with an I/O `UnexpectedEof` when the encoding runs past `end`,
/// and with the same corruption errors as [`read_u64`] otherwise.
pub fn read_u64_at(bytes: &[u8], pos: &mut usize, end: usize) -> Result<u64, TraceError> {
    /// The continuation bit of each lane.
    const CONT: u64 = 0x8080_8080_8080_8080;
    let end = end.min(bytes.len());
    let p = *pos;
    // SWAR fast path: load 8 bytes, find the terminator (the first byte
    // with its continuation bit clear), and compact the 7-bit payload
    // groups with three shift/mask rounds. Covers every encoding of up to
    // 8 bytes — values below 2^56, i.e. all ids, counts, and timestamps a
    // writer actually emits — away from the buffer tail.
    if p + 8 <= end {
        let chunk = u64::from_le_bytes(bytes[p..p + 8].try_into().expect("8-byte slice"));
        let stops = !chunk & CONT;
        if stops != 0 {
            let n = (stops.trailing_zeros() / 8) as usize + 1;
            // Non-minimal form: a multi-byte chain whose final byte
            // carries no payload (same rejection as the byte loop).
            if n > 1 && (chunk >> (8 * (n - 1))) & 0x7f == 0 {
                return Err(TraceError::corrupt("varint", "over-long encoding"));
            }
            let mask = if n == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * n)) - 1
            };
            let mut v = chunk & mask & !CONT;
            v = (v & 0x007f_007f_007f_007f) | ((v & 0x7f00_7f00_7f00_7f00) >> 1);
            v = (v & 0x0000_3fff_0000_3fff) | ((v & 0x3fff_0000_3fff_0000) >> 2);
            v = (v & 0x0000_0000_0fff_ffff) | ((v & 0x0fff_ffff_0000_0000) >> 4);
            *pos = p + n;
            return Ok(v);
        }
        // All 8 bytes are continuations: a 9–10 byte encoding (or a
        // corrupt chain); the byte loop below handles its checks.
    }
    let mut value: u64 = 0;
    let mut shift = 0u32;
    let mut p = p;
    loop {
        if p >= end {
            return Err(TraceError::Io(std::io::Error::from(
                std::io::ErrorKind::UnexpectedEof,
            )));
        }
        let byte = bytes[p];
        p += 1;
        if shift >= 64 {
            return Err(TraceError::corrupt("varint", "more than 10 bytes"));
        }
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(TraceError::corrupt("varint", "overflows u64"));
        }
        if shift > 0 && payload == 0 && byte & 0x80 == 0 {
            return Err(TraceError::corrupt("varint", "over-long encoding"));
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            *pos = p;
            return Ok(value);
        }
        shift += 7;
    }
}

/// Reads a `u32` from `bytes[*pos..end]` via [`read_u64_at`], rejecting
/// values out of range.
pub fn read_u32_at(bytes: &[u8], pos: &mut usize, end: usize) -> Result<u32, TraceError> {
    let v = read_u64_at(bytes, pos, end)?;
    u32::try_from(v).map_err(|_| TraceError::corrupt("varint", format!("{v} overflows u32")))
}

/// Writes a `u32` via the `u64` encoding.
pub fn write_u32<W: Write>(w: &mut W, value: u32) -> Result<(), TraceError> {
    write_u64(w, u64::from(value))
}

/// Reads a `u32`, rejecting values out of range.
pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, TraceError> {
    let v = read_u64(r)?;
    u32::try_from(v).map_err(|_| TraceError::corrupt("varint", format!("{v} overflows u32")))
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> Result<(), TraceError> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

/// Reads a length-prefixed UTF-8 string, with a sanity cap on its length.
///
/// The buffer is filled through [`Read::take`], so a corrupt length prefix
/// never allocates more than the bytes actually present in the input: a
/// prefix larger than the remaining input fails with an I/O error after
/// reading (and allocating for) only what exists.
pub fn read_str<R: Read>(r: &mut R) -> Result<String, TraceError> {
    const MAX_LEN: u64 = 1 << 20;
    let len = read_u64(r)?;
    if len > MAX_LEN {
        return Err(TraceError::corrupt(
            "string",
            format!("length {len} exceeds cap"),
        ));
    }
    let mut buf = Vec::new();
    let got = r.take(len).read_to_end(&mut buf)?;
    if (got as u64) < len {
        return Err(TraceError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("string length {len} exceeds remaining input ({got} bytes)"),
        )));
    }
    String::from_utf8(buf).map_err(|e| TraceError::corrupt("string", e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        read_u64(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn u64_round_trips() {
        for v in [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            assert_eq!(round_trip(v), v);
        }
    }

    #[test]
    fn encoding_is_minimal_length() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 127).unwrap();
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 128).unwrap();
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn truncated_input_is_io_error() {
        let buf = [0x80u8];
        assert!(matches!(
            read_u64(&mut buf.as_slice()),
            Err(TraceError::Io(_))
        ));
    }

    #[test]
    fn overlong_encoding_rejected() {
        let buf = [0x80u8; 11];
        assert!(matches!(
            read_u64(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn u64_overflow_rejected() {
        // 10 bytes whose final byte carries more than 1 bit of payload.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(matches!(
            read_u64(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn non_minimal_encodings_rejected() {
        // Each of these decodes to a small value through a longer-than-
        // minimal chain; the canonical writer never produces them.
        for adversarial in [
            &[0x80, 0x00][..],             // 0 in two bytes
            &[0xff, 0x00][..],             // 127 in two bytes
            &[0x80, 0x80, 0x00][..],       // 0 in three bytes
            &[0x81, 0x80, 0x80, 0x00][..], // 1 with trailing zero groups
        ] {
            assert!(
                matches!(
                    read_u64(&mut &adversarial[..]),
                    Err(TraceError::Corrupt { .. })
                ),
                "accepted over-long encoding {adversarial:?}"
            );
        }
        // The canonical single-byte zero still decodes.
        assert_eq!(read_u64(&mut &[0x00u8][..]).unwrap(), 0);
    }

    #[test]
    fn string_length_beyond_remaining_input_is_bounded() {
        // Length prefix claims 1 MiB but only 3 bytes follow: the reader
        // must fail with EOF after touching just those 3 bytes instead of
        // allocating the full claimed length up front.
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 20).unwrap();
        buf.extend_from_slice(b"abc");
        assert!(matches!(
            read_str(&mut buf.as_slice()),
            Err(TraceError::Io(_))
        ));
    }

    #[test]
    fn adversarial_byte_strings_never_panic() {
        // A grab bag of short hostile inputs: decoding must return, never
        // panic or hang.
        let cases: &[&[u8]] = &[
            &[],
            &[0x80],
            &[0xff; 16],
            &[
                0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01,
            ],
            &[0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f],
        ];
        for bytes in cases {
            let _ = read_u64(&mut &bytes[..]);
            let _ = read_u32(&mut &bytes[..]);
            let _ = read_str(&mut &bytes[..]);
        }
    }

    #[test]
    fn slice_reader_agrees_with_io_reader() {
        // Valid encodings, truncations, over-long chains, overflow: the
        // slice cursor must accept and reject exactly what the io reader
        // does, and leave `pos` exactly past what it consumed.
        let mut cases: Vec<Vec<u8>> = Vec::new();
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_384,
            1 << 20,
            481_000_000_000, // a session-scale timestamp: a 6-byte encoding
            u64::from(u32::MAX),
            (1 << 56) - 1, // longest encoding the word-at-a-time path covers
            1 << 56,       // first value that falls through to the byte loop
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            cases.push(buf);
        }
        cases.extend(
            [
                &[][..],
                &[0x80][..],
                &[0x80; 11][..],
                &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f][..],
                &[0x80, 0x00][..],
                &[0xff, 0x00][..],
                &[0x80, 0x80, 0x00][..],
                &[0x81, 0x80, 0x80, 0x80, 0x80, 0x00][..],
            ]
            .map(<[u8]>::to_vec),
        );
        for case in &cases {
            // Embed each case mid-buffer so `pos`/`end` handling is tested
            // too, with trailing bytes the reader must not touch. Check
            // each case under two windows: a tight one ending exactly at
            // the case (forces the slice cursor's byte loop) and a loose
            // one including the padding (lets its word-at-a-time path
            // fire); both readers always see the same window, so behavior
            // must agree under each.
            let mut buf = vec![0xaau8; 3];
            buf.extend_from_slice(case);
            buf.extend_from_slice(&[0x01; 9]);
            for end in [3 + case.len(), buf.len()] {
                let mut pos = 3usize;
                let via_slice = read_u64_at(&buf, &mut pos, end);
                let mut r = &buf[3..end];
                let via_io = read_u64(&mut r);
                match (via_slice, via_io) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "case {case:?} end {end}");
                        assert_eq!(
                            pos,
                            end - r.len(),
                            "case {case:?} end {end}: consumed differs"
                        );
                    }
                    (Err(TraceError::Io(_)), Err(TraceError::Io(_))) => {}
                    (Err(TraceError::Corrupt { .. }), Err(TraceError::Corrupt { .. })) => {}
                    (a, b) => panic!("case {case:?} end {end}: slice {a:?} vs io {b:?}"),
                }
            }
        }
    }

    #[test]
    fn u32_range_check() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::from(u32::MAX) + 1).unwrap();
        assert!(matches!(
            read_u32(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn strings_round_trip() {
        for s in ["", "a", "javax.swing.JComboBox", "üñïçødé"] {
            let mut buf = Vec::new();
            write_str(&mut buf, s).unwrap();
            assert_eq!(read_str(&mut buf.as_slice()).unwrap(), s);
        }
    }

    #[test]
    fn oversized_string_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1 << 21).unwrap();
        assert!(matches!(
            read_str(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_str(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }
}
