//! LiLa-like latency trace format.
//!
//! LagAlyzer is not a profiler: it operates offline on traces produced by a
//! latency profiler such as LiLa (paper §II-A). This crate defines that
//! contract as a concrete serialization format with two interchangeable
//! codecs:
//!
//! * a compact **binary** codec ([`binary`]) with varint-encoded integers
//!   and an FNV-1a trailer checksum, and
//! * a human-readable, line-based **text** codec ([`text`]).
//!
//! Both codecs round-trip a [`lagalyzer_model::SessionTrace`] exactly. A
//! trace is lowered to a flat stream of [`record::TraceRecord`]s (the same
//! events LiLa's instrumentation emits: interval enters/exits, stack
//! samples, GC brackets, short-episode counts) and reassembled through the
//! model builders, so decoding re-validates every structural invariant.
//!
//! The [`filter`] module implements the *tracer-side* episode filter: LiLa
//! drops episodes shorter than 3 ms to limit overhead, so LagAlyzer only
//! ever sees how many such episodes occurred (paper §IV-A).
//!
//! # Example
//!
//! ```
//! use lagalyzer_model::prelude::*;
//! use lagalyzer_trace::{binary, text};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let meta = SessionMeta {
//!     application: "Demo".into(),
//!     session: SessionId::from_raw(0),
//!     gui_thread: ThreadId::from_raw(0),
//!     end_to_end: DurationNs::from_secs(1),
//!     filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
//! };
//! let trace = SessionTraceBuilder::new(meta, SymbolTable::new()).finish();
//!
//! let mut bytes = Vec::new();
//! binary::write(&trace, &mut bytes)?;
//! let back = binary::read(&mut bytes.as_slice())?;
//! assert_eq!(back.meta().application, "Demo");
//!
//! let mut textual = Vec::new();
//! text::write(&trace, &mut textual)?;
//! assert!(String::from_utf8(textual)?.starts_with("lagalyzer-trace v1"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auto;
pub mod binary;
pub mod corpus;
pub mod error;
pub mod faults;
pub mod filter;
pub mod index;
pub mod record;
pub mod rollup;
pub mod salvage;
pub mod stream;
pub mod text;
mod varint;

pub use auto::{read_bytes, read_path};
pub use corpus::{is_corpus, CorpusReader, PackOptions, SessionView};
pub use error::TraceError;
pub use filter::TraceFilter;
pub use index::{
    probe_rollup, DurationBand, EpisodeExtent, EpisodeFilter, IndexHealth, IndexedTrace,
};
pub use record::{records_from_trace, trace_from_records, TraceRecord};
pub use rollup::{Rollup, RollupHealth};
pub use salvage::{
    read_bytes_salvage, read_path_salvage, DamageVerdict, SalvageReport, SalvageSkip, Salvaged,
    SkipAt,
};
pub use stream::{EpisodeStream, SalvageEpisodeStream};
