//! Multi-session corpus container (`.lgzc`): many traces, one file.
//!
//! The analyses serve fleets of sessions, but a `.lgz` file holds exactly
//! one: N sessions cost N opens, N symbol tables, and N copies of the
//! same method names. The corpus container packs many sessions into one
//! file with a **corpus-wide deduplicated symbol table** (every string
//! stored once, per-session tables reconstructed through a dense remap),
//! a **section index** with per-section compression flags (episode
//! payloads may be stored raw or through the crate's own hand-rolled LZ
//! codec), and the per-file episode extent index promoted to a
//! **corpus-level index** — any episode of any session is addressable in
//! O(1) without decoding its neighbors.
//!
//! Layout (integers little-endian; varints are LEB128 as in `.lgz`):
//!
//! ```text
//! magic        8 bytes  b"LGLZCRP\x01" (the last byte is the version)
//! header       flags u32, session count u32, then five u64 region
//!              offsets: strings, sessions, sections, extents, data
//! strings      corpus-global deduplicated string pool: count, then
//!              len+utf8 per string (dense global symbol ids, in order)
//! sessions     per session: the .lgz header fields, index health,
//!              provenance (salvaged/damaged flags, skip + lost counts),
//!              the local→global symbol remap, GC events, short-episode
//!              counters
//! sections     one record per section: kind, session, compression
//!              flags, offset into the data region, stored len, raw len.
//!              Exactly one payload section per session (kind 0, in
//!              session order); an optional rollup cache per session
//!              (kind 1); unknown kinds are skipped by readers
//! extents      per session: the extent table (same delta-coded wire
//!              shape as the v2 footer), offsets relative to the
//!              session's decompressed payload
//! data         concatenated payload sections (episode record bytes
//!              only — session-level records are hoisted into the
//!              directory regions above)
//! trailer      8 bytes LE FNV-1a over everything between magic and
//!              trailer
//! ```
//!
//! Because a session's payload is the byte-for-byte concatenation of its
//! episode extents and the episode decoder is shared with
//! [`IndexedTrace`], decoding a session out of a corpus is byte-identical
//! to opening its original `.lgz` and calling
//! [`IndexedTrace::par_decode`] — property-tested in
//! `tests/corpus_store.rs`.

use std::ops::Range;

use lagalyzer_model::parallel::map_shards_init;
use lagalyzer_model::{
    DurationNs, Episode, EpisodeFragment, GcEvent, SessionMeta, SessionTrace, SessionTraceBuilder,
    SymbolId, SymbolTable, TimeNs,
};

use crate::binary::{fnv1a, read_header, write_header};
use crate::error::TraceError;
use crate::index::{
    decode_extent, decode_extents, encode_extents_into, DecodeScratch, EpisodeExtent,
    EpisodeFilter, IndexHealth, IndexedTrace,
};
use crate::rollup::{Rollup, RollupHealth};
use crate::salvage::DamageVerdict;
use crate::varint;

/// The version-independent corpus signature (byte 8 is the version).
pub(crate) const CORPUS_MAGIC_PREFIX: &[u8] = b"LGLZCRP";

/// The current corpus format: prefix plus version byte 1.
const CORPUS_MAGIC: &[u8; 8] = b"LGLZCRP\x01";

/// Fixed header size: magic, flags, session count, five region offsets.
const HEADER_LEN: usize = 8 + 4 + 4 + 5 * 8;

/// Header flag: at least one section is LZ-compressed (advisory; the
/// authoritative bit is per-section).
const FLAG_COMPRESSED: u32 = 1;

/// Section kinds. Payload sections are mandatory (exactly one per
/// session, in session order); every other kind is optional. Section
/// index records are self-delimiting (kind, session, flags, offset,
/// stored len, raw len), so readers skip unknown kinds instead of
/// rejecting the corpus (forward-compat, DESIGN 5e).
const SECTION_PAYLOAD: u8 = 0;

/// Optional per-session rollup cache: the encoded rollup payload
/// (possibly LZ-compressed). Ignored when stale or malformed — the warm
/// path silently falls back to decoding.
const SECTION_ROLLUP: u8 = 1;

/// Per-section flag: the stored bytes are LZ-compressed.
const SECTION_FLAG_LZ: u8 = 1;

/// Caps that keep a corrupt (but checksum-valid) header from forcing
/// absurd allocations.
const MAX_SESSIONS: u64 = 1 << 20;
const MAX_STRINGS: u64 = 1 << 28;
const MAX_STRING_LEN: u64 = 1 << 20;
const MAX_RAW_SECTION: u64 = 1 << 30;

/// `true` when `bytes` carry the corpus signature (any version) — the
/// sniff the CLI uses to route a file to [`CorpusReader`] instead of the
/// single-trace codecs.
pub fn is_corpus(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && &bytes[..7] == CORPUS_MAGIC_PREFIX
}

/// Options for [`pack`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PackOptions {
    /// LZ-compress each session's payload section. The corpus remains
    /// byte-identical to decode; only the stored bytes differ.
    pub compress: bool,
}

/// Everything the writer needs for one session, already rebased.
struct PackSession {
    meta: SessionMeta,
    symbols: SymbolTable,
    gc_events: Vec<GcEvent>,
    short_count: u64,
    short_time: DurationNs,
    health: IndexHealth,
    salvaged: bool,
    damaged: bool,
    skips: u64,
    episodes_lost: u64,
    extents: Vec<EpisodeExtent>,
    payload: Vec<u8>,
    rollup: Option<Rollup>,
}

impl PackSession {
    /// Rebases one opened trace: concatenates its episode extents into a
    /// dense payload (dropping inter-extent bytes — session-level records
    /// are hoisted, salvage garbage is simply not copied) and rewrites
    /// the extent offsets to match.
    fn of_indexed(trace: &IndexedTrace) -> PackSession {
        let total: u64 = trace.extents().iter().map(|e| e.len).sum();
        let mut payload = Vec::with_capacity(total as usize);
        let mut extents = Vec::with_capacity(trace.extents().len());
        for (i, extent) in trace.extents().iter().enumerate() {
            let rebased = EpisodeExtent {
                offset: payload.len() as u64,
                ..*extent
            };
            payload.extend_from_slice(trace.episode_bytes(i));
            extents.push(rebased);
        }
        let report = trace.salvage_report();
        PackSession {
            meta: trace.meta().clone(),
            symbols: trace.symbols().clone(),
            gc_events: trace.gc_events().to_vec(),
            short_count: trace.short_episode_count(),
            short_time: trace.short_episode_time(),
            health: trace.health().clone(),
            salvaged: report.is_some(),
            damaged: report.is_some_and(|r| !r.is_clean()),
            skips: report.map_or(0, |r| r.skips.len() as u64),
            episodes_lost: report.map_or(0, |r| r.episodes_lost),
            extents,
            payload,
            rollup: trace.rollup().cloned(),
        }
    }
}

/// Packs opened traces into one corpus file.
///
/// Symbols are interned **once corpus-wide**: every session's local
/// table is folded into a single deduplicated string pool, and each
/// session keeps only a dense local→global id remap — decoding restores
/// the exact per-session tables, so corpus decodes stay byte-identical
/// to per-file ones.
///
/// # Errors
///
/// Fails on a symbol table with an unresolvable id (impossible for
/// tables produced by the decoders) or an I/O-level encoding failure.
pub fn pack(traces: &[IndexedTrace], options: PackOptions) -> Result<Vec<u8>, TraceError> {
    pack_with_rollups(traces, Vec::new(), options)
}

/// Like [`pack`], but attaches externally built rollup caches: `built[i]`
/// (when `Some`) is used for session `i` if its trace does not already
/// carry a validated rollup. Content checksums are recomputed over the
/// rebased payloads at write time, so carried and supplied rollups are
/// equally trustworthy; `built` may be shorter than `traces` (missing
/// tails mean "no cache").
///
/// # Errors
///
/// Same failure modes as [`pack`].
pub fn pack_with_rollups(
    traces: &[IndexedTrace],
    mut built: Vec<Option<Rollup>>,
    options: PackOptions,
) -> Result<Vec<u8>, TraceError> {
    built.resize(traces.len(), None);
    let sessions: Vec<PackSession> = traces
        .iter()
        .zip(built)
        .map(|(trace, extra)| {
            let mut session = PackSession::of_indexed(trace);
            if session.rollup.is_none() {
                session.rollup = extra;
            }
            session
        })
        .collect();
    pack_sessions(&sessions, options)
}

/// Re-packs an already-open corpus, dropping every byte salvage had to
/// step over: each session is decoded and canonically re-encoded, so
/// payloads contain exactly the surviving episodes' records and the
/// global string pool is re-deduplicated from the surviving sessions.
/// Provenance (salvaged/damaged flags, skip and lost counts) is carried
/// over so a compacted corpus still reports its history.
///
/// Compacting an already-compact corpus is byte-identical (idempotent):
/// re-encoding canonical payloads is a fixed point.
///
/// # Errors
///
/// Propagates decode or re-encode failures.
pub fn compact(
    reader: &CorpusReader,
    jobs: usize,
    options: PackOptions,
) -> Result<Vec<u8>, TraceError> {
    compact_with_rollups(reader, jobs, options, None)
}

/// Like [`compact`], but rebuilds missing rollup caches: sessions whose
/// original entry carried a valid rollup keep it (summaries are semantic,
/// so canonical re-encoding does not invalidate them; the content
/// checksum is recomputed at write time), and sessions without one are
/// handed to `build` (when provided) along with their decoded trace.
///
/// # Errors
///
/// Same failure modes as [`compact`].
pub fn compact_with_rollups(
    reader: &CorpusReader,
    jobs: usize,
    options: PackOptions,
    build: Option<&dyn Fn(&SessionTrace) -> Rollup>,
) -> Result<Vec<u8>, TraceError> {
    let decoded = reader.par_decode(jobs)?;
    let mut sessions = Vec::with_capacity(decoded.len());
    for (i, trace) in decoded.iter().enumerate() {
        let mut buf = Vec::new();
        crate::binary::write(trace, &mut buf)?;
        let indexed = IndexedTrace::open(buf)?;
        let mut session = PackSession::of_indexed(&indexed);
        // The re-encoded bytes are clean; the history is the original's.
        let entry = reader.entry(i);
        session.health = IndexHealth::FooterValid;
        session.salvaged = entry.salvaged;
        session.damaged = entry.damaged;
        session.skips = entry.skips;
        session.episodes_lost = entry.episodes_lost;
        session.rollup = entry
            .rollup
            .clone()
            .or_else(|| build.map(|build| build(trace)));
        sessions.push(session);
    }
    pack_sessions(&sessions, options)
}

fn health_tag(health: &IndexHealth) -> (u8, &str) {
    match health {
        IndexHealth::FooterValid => (0, ""),
        IndexHealth::FooterAbsent => (1, ""),
        IndexHealth::FooterInvalid(reason) => (2, reason),
        IndexHealth::SalvageScan => (3, ""),
    }
}

fn health_of_tag(tag: u8, reason: String) -> Result<IndexHealth, TraceError> {
    match tag {
        0 => Ok(IndexHealth::FooterValid),
        1 => Ok(IndexHealth::FooterAbsent),
        2 => Ok(IndexHealth::FooterInvalid(reason)),
        3 => Ok(IndexHealth::SalvageScan),
        other => Err(TraceError::corrupt(
            "session directory",
            format!("bad index health tag {other}"),
        )),
    }
}

fn pack_sessions(sessions: &[PackSession], options: PackOptions) -> Result<Vec<u8>, TraceError> {
    // Corpus-global interning: one deduplicated pool, one remap each.
    let mut global = SymbolTable::new();
    let mut remaps: Vec<Vec<u32>> = Vec::with_capacity(sessions.len());
    for session in sessions {
        let mut remap = Vec::with_capacity(session.symbols.len());
        for (_, name) in session.symbols.iter() {
            remap.push(global.intern(name).as_raw());
        }
        remaps.push(remap);
    }

    let mut strings = Vec::new();
    varint::write_u64(&mut strings, global.len() as u64)?;
    for (_, name) in global.iter() {
        varint::write_str(&mut strings, name)?;
    }

    let mut directory = Vec::new();
    for (session, remap) in sessions.iter().zip(&remaps) {
        write_header(&session.meta, &mut directory)?;
        let (tag, reason) = health_tag(&session.health);
        directory.push(tag);
        varint::write_str(&mut directory, reason)?;
        directory.push(u8::from(session.salvaged) | (u8::from(session.damaged) << 1));
        varint::write_u64(&mut directory, session.skips)?;
        varint::write_u64(&mut directory, session.episodes_lost)?;
        varint::write_u64(&mut directory, remap.len() as u64)?;
        for &global_id in remap {
            varint::write_u32(&mut directory, global_id)?;
        }
        varint::write_u64(&mut directory, session.gc_events.len() as u64)?;
        for gc in &session.gc_events {
            varint::write_u64(&mut directory, gc.start.as_nanos())?;
            varint::write_u64(&mut directory, gc.end.as_nanos())?;
            directory.push(u8::from(gc.major));
        }
        varint::write_u64(&mut directory, session.short_count)?;
        varint::write_u64(&mut directory, session.short_time.as_nanos())?;
    }

    let mut data = Vec::new();
    let mut sections = Vec::new();
    let mut any_compressed = false;
    // Incompressible inputs are stored raw — never pay stored_len >
    // raw_len. Returns (flags, offset, stored_len) for the index record.
    let mut store = |data: &mut Vec<u8>, bytes: &[u8]| -> (u8, u64, u64) {
        let offset = data.len() as u64;
        if options.compress {
            let compressed = lz::compress(bytes);
            if compressed.len() < bytes.len() {
                data.extend_from_slice(&compressed);
                any_compressed = true;
                return (SECTION_FLAG_LZ, offset, compressed.len() as u64);
            }
        }
        data.extend_from_slice(bytes);
        (0, offset, bytes.len() as u64)
    };
    let section_count = sessions.len() + sessions.iter().filter(|s| s.rollup.is_some()).count();
    varint::write_u64(&mut sections, section_count as u64)?;
    for (i, session) in sessions.iter().enumerate() {
        let (flags, offset, stored_len) = store(&mut data, &session.payload);
        sections.push(SECTION_PAYLOAD);
        varint::write_u64(&mut sections, i as u64)?;
        sections.push(flags);
        varint::write_u64(&mut sections, offset)?;
        varint::write_u64(&mut sections, stored_len)?;
        varint::write_u64(&mut sections, session.payload.len() as u64)?;
        if let Some(rollup) = &session.rollup {
            // The payload is exactly the concatenation of the extent
            // spans, so the content checksum is the FNV of the whole
            // payload region; recompute it so a supplied rollup is
            // stamped against the bytes actually written.
            let mut rollup = rollup.clone();
            rollup.content_checksum = crate::rollup::content_checksum(&session.payload);
            let raw = rollup.encode_payload()?;
            let (flags, offset, stored_len) = store(&mut data, &raw);
            sections.push(SECTION_ROLLUP);
            varint::write_u64(&mut sections, i as u64)?;
            sections.push(flags);
            varint::write_u64(&mut sections, offset)?;
            varint::write_u64(&mut sections, stored_len)?;
            varint::write_u64(&mut sections, raw.len() as u64)?;
        }
    }

    let mut extents = Vec::new();
    for session in sessions {
        encode_extents_into(&session.extents, &mut extents)?;
    }

    let strings_off = HEADER_LEN as u64;
    let sessions_off = strings_off + strings.len() as u64;
    let sections_off = sessions_off + directory.len() as u64;
    let extents_off = sections_off + sections.len() as u64;
    let data_off = extents_off + extents.len() as u64;

    let mut out = Vec::with_capacity(HEADER_LEN + data_off as usize + data.len() + 8);
    out.extend_from_slice(CORPUS_MAGIC);
    out.extend_from_slice(
        &(if any_compressed {
            FLAG_COMPRESSED
        } else {
            0u32
        })
        .to_le_bytes(),
    );
    out.extend_from_slice(&(sessions.len() as u32).to_le_bytes());
    for off in [
        strings_off,
        sessions_off,
        sections_off,
        extents_off,
        data_off,
    ] {
        out.extend_from_slice(&off.to_le_bytes());
    }
    out.extend_from_slice(&strings);
    out.extend_from_slice(&directory);
    out.extend_from_slice(&sections);
    out.extend_from_slice(&extents);
    out.extend_from_slice(&data);
    let checksum = fnv1a(&out[8..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// Where a session's (possibly decompressed) payload lives.
enum Payload {
    /// Raw section: a range into the corpus bytes (zero-copy).
    Raw(Range<usize>),
    /// LZ section: decompressed once at open time.
    Decompressed(Vec<u8>),
}

/// One session's directory entry, fully materialized at open time.
struct SessionEntry {
    meta: SessionMeta,
    symbols: SymbolTable,
    gc_events: Vec<GcEvent>,
    short_count: u64,
    short_time: DurationNs,
    health: IndexHealth,
    salvaged: bool,
    damaged: bool,
    skips: u64,
    episodes_lost: u64,
    compressed: bool,
    extents: Vec<EpisodeExtent>,
    payload: Payload,
    rollup: Option<Rollup>,
    rollup_health: RollupHealth,
}

/// A corpus opened for indexed, zero-copy access.
///
/// Owns the corpus bytes; raw payload sections are borrowed in place
/// (compressed ones are decompressed once at open). Episode decoding
/// shares [`IndexedTrace`]'s extent decoder, so per-session results are
/// byte-identical to opening the original `.lgz` files.
pub struct CorpusReader {
    bytes: Vec<u8>,
    global: SymbolTable,
    sessions: Vec<SessionEntry>,
    /// Flattened episode addressing: `slot_base[i]` is the first global
    /// slot of session `i` (one past-the-end sentinel at the back).
    slot_base: Vec<usize>,
}

/// A borrowed view of one session inside a [`CorpusReader`].
#[derive(Clone, Copy)]
pub struct SessionView<'a> {
    reader: &'a CorpusReader,
    index: usize,
}

impl CorpusReader {
    /// Opens a corpus from an owned byte buffer (the mmap-free zero-copy
    /// open: raw payload sections are never copied out of `bytes`),
    /// verifying the trailer checksum and materializing the directory.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, an unsupported version, a checksum mismatch,
    /// or a malformed directory/section/extent region.
    pub fn open(bytes: Vec<u8>) -> Result<CorpusReader, TraceError> {
        if bytes.len() < HEADER_LEN + 8 {
            return Err(TraceError::corrupt("corpus header", "input too short"));
        }
        if &bytes[..7] != CORPUS_MAGIC_PREFIX {
            return Err(TraceError::corrupt(
                "corpus magic",
                format!("{:?}", &bytes[..8]),
            ));
        }
        if bytes[7] != 1 {
            return Err(TraceError::UnsupportedVersion {
                found: u32::from(bytes[7]),
            });
        }
        let payload_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[payload_end..].try_into().expect("8-byte slice"));
        let computed = fnv1a(&bytes[8..payload_end]);
        if stored != computed {
            return Err(TraceError::ChecksumMismatch { stored, computed });
        }
        let flags = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
        if flags & !FLAG_COMPRESSED != 0 {
            return Err(TraceError::corrupt(
                "corpus header",
                format!("unknown header flags {flags:#x}"),
            ));
        }
        let session_count = u64::from(u32::from_le_bytes(
            bytes[12..16].try_into().expect("4-byte slice"),
        ));
        if session_count > MAX_SESSIONS {
            return Err(TraceError::corrupt(
                "corpus header",
                format!("{session_count} sessions exceeds cap"),
            ));
        }
        let mut offsets = [0u64; 5];
        for (i, off) in offsets.iter_mut().enumerate() {
            *off = u64::from_le_bytes(
                bytes[16 + i * 8..24 + i * 8]
                    .try_into()
                    .expect("8-byte slice"),
            );
        }
        let [strings_off, sessions_off, sections_off, extents_off, data_off] = offsets;
        let bounds = [
            HEADER_LEN as u64,
            strings_off,
            sessions_off,
            sections_off,
            extents_off,
            data_off,
            payload_end as u64,
        ];
        if bounds.windows(2).any(|w| w[0] > w[1]) {
            return Err(TraceError::corrupt(
                "corpus header",
                "region offsets out of order",
            ));
        }

        let global = read_strings(&bytes[strings_off as usize..sessions_off as usize])?;
        let directory = read_directory(
            &bytes[sessions_off as usize..sections_off as usize],
            session_count,
            &global,
        )?;
        let (sections, rollup_sections) = read_sections(
            &bytes[sections_off as usize..extents_off as usize],
            session_count,
            (payload_end as u64) - data_off,
        )?;

        let mut sessions = Vec::with_capacity(directory.len());
        let extents_bytes = &bytes[..extents_off as usize + (data_off - extents_off) as usize];
        let mut pos = extents_off as usize;
        let extents_end = data_off as usize;
        for ((dir, section), rollup_section) in
            directory.into_iter().zip(&sections).zip(rollup_sections)
        {
            let extents = decode_extents(extents_bytes, &mut pos, extents_end, section.raw_len)?;
            let start = (data_off + section.offset) as usize;
            let stored = &bytes[start..start + section.stored_len as usize];
            let payload = if section.compressed {
                Payload::Decompressed(lz::decompress(stored, section.raw_len as usize)?)
            } else {
                if section.stored_len != section.raw_len {
                    return Err(TraceError::corrupt(
                        "section index",
                        "raw section with stored_len != raw_len",
                    ));
                }
                Payload::Raw(start..start + section.raw_len as usize)
            };
            let payload_bytes = match &payload {
                Payload::Raw(range) => &bytes[range.clone()],
                Payload::Decompressed(buf) => buf.as_slice(),
            };
            let (rollup, rollup_health) =
                open_rollup(&bytes, data_off, rollup_section, payload_bytes, &extents);
            sessions.push(SessionEntry {
                meta: dir.meta,
                symbols: dir.symbols,
                gc_events: dir.gc_events,
                short_count: dir.short_count,
                short_time: dir.short_time,
                health: dir.health,
                salvaged: dir.salvaged,
                damaged: dir.damaged,
                skips: dir.skips,
                episodes_lost: dir.episodes_lost,
                compressed: section.compressed,
                extents,
                payload,
                rollup,
                rollup_health,
            });
        }
        if pos != extents_end {
            return Err(TraceError::corrupt(
                "corpus extent index",
                "trailing bytes after the last session's extents",
            ));
        }
        let mut slot_base = Vec::with_capacity(sessions.len() + 1);
        let mut total = 0usize;
        for entry in &sessions {
            slot_base.push(total);
            total += entry.extents.len();
        }
        slot_base.push(total);
        Ok(CorpusReader {
            bytes,
            global,
            sessions,
            slot_base,
        })
    }

    /// Number of sessions in the corpus.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when the corpus holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Episodes across all sessions (the corpus extent index's size).
    pub fn total_episodes(&self) -> usize {
        *self.slot_base.last().expect("sentinel")
    }

    /// The corpus-wide deduplicated symbol table.
    pub fn global_symbols(&self) -> &SymbolTable {
        &self.global
    }

    /// A view of session `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range (see [`CorpusReader::len`]).
    pub fn session(&self, i: usize) -> SessionView<'_> {
        assert!(i < self.sessions.len(), "no session {i} in the corpus");
        SessionView {
            reader: self,
            index: i,
        }
    }

    /// Iterates the sessions in order.
    pub fn sessions(&self) -> impl Iterator<Item = SessionView<'_>> {
        (0..self.sessions.len()).map(|i| self.session(i))
    }

    /// The corpus-wide damage verdict: the worst per-session verdict
    /// (sessions in a corpus are never `Unrecoverable` — pack refuses
    /// inputs that do not open).
    pub fn damage_verdict(&self) -> DamageVerdict {
        if self.sessions.iter().any(|s| s.damaged) {
            DamageVerdict::Damaged
        } else {
            DamageVerdict::Clean
        }
    }

    fn entry(&self, i: usize) -> &SessionEntry {
        &self.sessions[i]
    }

    fn payload_bytes(&self, i: usize) -> &[u8] {
        match &self.sessions[i].payload {
            Payload::Raw(range) => &self.bytes[range.clone()],
            Payload::Decompressed(buf) => buf,
        }
    }

    /// Maps a flat slot to `(session, extent index)`.
    fn locate(&self, slot: usize) -> (usize, usize) {
        let session = self.slot_base.partition_point(|&base| base <= slot) - 1;
        (session, slot - self.slot_base[session])
    }

    /// Decodes every session by fanning `(session, extent-batch)` work
    /// items over `jobs` worker threads — one flattened slot space, so a
    /// short session never strands a worker. Results are byte-identical
    /// to decoding each session separately, for any job count.
    ///
    /// # Errors
    ///
    /// Propagates the first (in corpus order) extent decode failure of a
    /// non-salvaged session.
    pub fn par_decode(&self, jobs: usize) -> Result<Vec<SessionTrace>, TraceError> {
        let shards = map_shards_init(
            self.total_episodes(),
            jobs,
            DecodeScratch::default,
            |scratch, slots| self.decode_slots(slots, scratch),
        );
        let mut builders: Vec<SessionTraceBuilder> = self
            .sessions
            .iter()
            .map(|s| {
                let mut b = SessionTraceBuilder::new(s.meta.clone(), s.symbols.clone());
                b.reserve_episodes(s.extents.len());
                b
            })
            .collect();
        for shard in shards {
            for (session, fragment) in shard? {
                if self.sessions[session].salvaged {
                    builders[session].append_fragment_lenient(fragment);
                } else {
                    builders[session].append_fragment(fragment)?;
                }
            }
        }
        Ok(builders
            .into_iter()
            .zip(&self.sessions)
            .map(|(mut b, s)| {
                for gc in &s.gc_events {
                    b.push_gc(*gc);
                }
                b.add_short_episodes(s.short_count, s.short_time);
                b.finish()
            })
            .collect())
    }

    /// Decodes one shard of flat slots into per-session fragments (a new
    /// fragment starts whenever the slot walk crosses a session
    /// boundary).
    fn decode_slots(
        &self,
        slots: Range<usize>,
        scratch: &mut DecodeScratch,
    ) -> Result<Vec<(usize, EpisodeFragment)>, TraceError> {
        let mut out: Vec<(usize, EpisodeFragment)> = Vec::new();
        for slot in slots {
            let (session, i) = self.locate(slot);
            let entry = &self.sessions[session];
            let episode = self.decode_episode_with(session, i, scratch)?;
            if out.last().map(|(s, _)| *s) != Some(session) {
                let remaining = self.slot_base[session + 1] - slot;
                out.push((session, EpisodeFragment::with_capacity(remaining)));
            }
            let fragment = &mut out.last_mut().expect("fragment just ensured").1;
            if entry.salvaged {
                fragment.push_lenient(episode);
            } else {
                fragment.push(episode)?;
            }
        }
        Ok(out)
    }

    fn decode_episode_with(
        &self,
        session: usize,
        i: usize,
        scratch: &mut DecodeScratch,
    ) -> Result<Episode, TraceError> {
        let entry = &self.sessions[session];
        let extent = *entry.extents.get(i).ok_or_else(|| {
            TraceError::corrupt(
                "corpus extent index",
                format!("no episode {i} in session {session}"),
            )
        })?;
        let payload = self.payload_bytes(session);
        let span = &payload[extent.offset as usize..(extent.offset + extent.len) as usize];
        decode_extent(span, &extent, scratch)
    }
}

impl<'a> SessionView<'a> {
    /// The session's position in the corpus.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The session metadata.
    pub fn meta(&self) -> &'a SessionMeta {
        &self.reader.entry(self.index).meta
    }

    /// The reconstructed per-session symbol table (dense local ids, same
    /// table the original `.lgz` decode produces).
    pub fn symbols(&self) -> &'a SymbolTable {
        &self.reader.entry(self.index).symbols
    }

    /// The session's extent index (offsets relative to its payload).
    pub fn extents(&self) -> &'a [EpisodeExtent] {
        &self.reader.entry(self.index).extents
    }

    /// How the session's extent index was obtained when it was packed.
    pub fn health(&self) -> &'a IndexHealth {
        &self.reader.entry(self.index).health
    }

    /// `true` when the session was packed from a salvage-mode open
    /// (decoding is lenient, mirroring [`IndexedTrace::open_salvage`]).
    pub fn is_salvaged(&self) -> bool {
        self.reader.entry(self.index).salvaged
    }

    /// `true` when salvage actually skipped bytes or lost episodes.
    pub fn is_damaged(&self) -> bool {
        self.reader.entry(self.index).damaged
    }

    /// Salvage skip regions recorded when the session was packed.
    pub fn skips(&self) -> u64 {
        self.reader.entry(self.index).skips
    }

    /// Episodes lost to salvage when the session was packed.
    pub fn episodes_lost(&self) -> u64 {
        self.reader.entry(self.index).episodes_lost
    }

    /// `true` when the session's payload section is LZ-compressed.
    pub fn is_compressed(&self) -> bool {
        self.reader.entry(self.index).compressed
    }

    /// The session's validated rollup cache, when one is present and its
    /// content checksum matches the payload — the warm analysis path's
    /// input. `None` means cold decode (absent or stale section).
    pub fn rollup(&self) -> Option<&'a Rollup> {
        self.reader.entry(self.index).rollup.as_ref()
    }

    /// Diagnostic health of the session's rollup section (see
    /// `lagalyzer lint`).
    pub fn rollup_health(&self) -> &'a RollupHealth {
        &self.reader.entry(self.index).rollup_health
    }

    /// The session's damage verdict.
    pub fn damage_verdict(&self) -> DamageVerdict {
        if self.is_damaged() {
            DamageVerdict::Damaged
        } else {
            DamageVerdict::Clean
        }
    }

    /// Number of episodes in the session.
    pub fn len(&self) -> usize {
        self.extents().len()
    }

    /// `true` when the session has no traced episodes.
    pub fn is_empty(&self) -> bool {
        self.extents().is_empty()
    }

    /// Borrows episode `i`'s record bytes zero-copy (from the corpus
    /// buffer for raw sections, from the decompressed payload for LZ
    /// ones).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn episode_bytes(&self, i: usize) -> &'a [u8] {
        let extent = &self.extents()[i];
        let payload = self.reader.payload_bytes(self.index);
        &payload[extent.offset as usize..(extent.offset + extent.len) as usize]
    }

    /// Randomly accesses episode `i` — O(1) via the corpus extent index.
    ///
    /// # Errors
    ///
    /// Fails when `i` is out of range or the extent's bytes do not
    /// decode.
    pub fn decode_episode(&self, i: usize) -> Result<Episode, TraceError> {
        self.reader
            .decode_episode_with(self.index, i, &mut DecodeScratch::default())
    }

    /// Decodes this session alone, fanning its extents over `jobs`
    /// workers — byte-identical to `IndexedTrace::par_decode` on the
    /// session's original file.
    ///
    /// # Errors
    ///
    /// Propagates the first extent decode failure (non-salvaged
    /// sessions).
    pub fn decode(&self, jobs: usize) -> Result<SessionTrace, TraceError> {
        self.decode_filtered(jobs, &EpisodeFilter::default())
    }

    /// Like [`decode`](SessionView::decode), but only decodes episodes
    /// the filter admits — the filter rides the corpus extent index, so
    /// excluded episodes' bytes are never parsed.
    ///
    /// # Errors
    ///
    /// Propagates the first extent decode failure (non-salvaged
    /// sessions).
    pub fn decode_filtered(
        &self,
        jobs: usize,
        filter: &EpisodeFilter,
    ) -> Result<SessionTrace, TraceError> {
        let entry = self.reader.entry(self.index);
        let lenient = entry.salvaged;
        let indices: Vec<usize> = (0..entry.extents.len())
            .filter(|&i| filter.admits_extent(&entry.extents[i]))
            .collect();
        let shards = map_shards_init(indices.len(), jobs, DecodeScratch::default, |scratch, r| {
            let mut fragment = EpisodeFragment::with_capacity(r.len());
            for slot in r {
                let episode =
                    self.reader
                        .decode_episode_with(self.index, indices[slot], scratch)?;
                if lenient {
                    fragment.push_lenient(episode);
                } else {
                    fragment.push(episode)?;
                }
            }
            Ok::<EpisodeFragment, TraceError>(fragment)
        });
        let mut b = SessionTraceBuilder::new(entry.meta.clone(), entry.symbols.clone());
        b.reserve_episodes(indices.len());
        for shard in shards {
            let fragment = shard?;
            if lenient {
                b.append_fragment_lenient(fragment);
            } else {
                b.append_fragment(fragment)?;
            }
        }
        for gc in &entry.gc_events {
            b.push_gc(*gc);
        }
        b.add_short_episodes(entry.short_count, entry.short_time);
        Ok(b.finish())
    }

    /// Episodes the filter would exclude, counted from the extent index
    /// alone.
    pub fn excluded_by(&self, filter: &EpisodeFilter) -> usize {
        self.extents()
            .iter()
            .filter(|e| !filter.admits_extent(e))
            .count()
    }
}

/// What the section index records about one payload section.
struct Section {
    compressed: bool,
    offset: u64,
    stored_len: u64,
    raw_len: u64,
}

/// Parsed per-session directory entry (before extents and payload).
struct DirEntry {
    meta: SessionMeta,
    symbols: SymbolTable,
    gc_events: Vec<GcEvent>,
    short_count: u64,
    short_time: DurationNs,
    health: IndexHealth,
    salvaged: bool,
    damaged: bool,
    skips: u64,
    episodes_lost: u64,
}

fn read_strings(region: &[u8]) -> Result<SymbolTable, TraceError> {
    let mut r = region;
    let count = varint::read_u64(&mut r)?;
    if count > MAX_STRINGS {
        return Err(TraceError::corrupt(
            "corpus string table",
            format!("{count} strings exceeds cap"),
        ));
    }
    let mut global = SymbolTable::with_capacity(count.min(1 << 16) as usize);
    for i in 0..count {
        let name = varint::read_str(&mut r)?;
        if name.len() as u64 > MAX_STRING_LEN {
            return Err(TraceError::corrupt(
                "corpus string table",
                "oversized string",
            ));
        }
        if global.intern_owned(name) != SymbolId::from_raw(i.min(u64::from(u32::MAX)) as u32) {
            // A duplicate would intern to an earlier id: the pool must be
            // deduplicated (that is the whole point of the corpus table).
            return Err(TraceError::corrupt(
                "corpus string table",
                "duplicate string in the deduplicated pool",
            ));
        }
    }
    if !r.is_empty() {
        return Err(TraceError::corrupt(
            "corpus string table",
            "trailing bytes after the last string",
        ));
    }
    Ok(global)
}

fn read_directory(
    region: &[u8],
    session_count: u64,
    global: &SymbolTable,
) -> Result<Vec<DirEntry>, TraceError> {
    let mut r = region;
    let mut out = Vec::with_capacity(session_count.min(1 << 12) as usize);
    for _ in 0..session_count {
        let meta = read_header(&mut r)?;
        let (health_tag, rest) = split_byte(r, "session directory")?;
        r = rest;
        let reason = varint::read_str(&mut r)?;
        let health = health_of_tag(health_tag, reason)?;
        let (flags, rest) = split_byte(r, "session directory")?;
        r = rest;
        if flags & !0b11 != 0 {
            return Err(TraceError::corrupt(
                "session directory",
                format!("unknown provenance flags {flags:#x}"),
            ));
        }
        let salvaged = flags & 1 != 0;
        let damaged = flags & 2 != 0;
        let skips = varint::read_u64(&mut r)?;
        let episodes_lost = varint::read_u64(&mut r)?;
        let remap_len = varint::read_u64(&mut r)?;
        if remap_len > MAX_STRINGS {
            return Err(TraceError::corrupt(
                "session directory",
                format!("{remap_len} symbols exceeds cap"),
            ));
        }
        let mut remap_ids = Vec::with_capacity(remap_len.min(1 << 16) as usize);
        for _ in 0..remap_len {
            remap_ids.push(varint::read_u32(&mut r)?);
        }
        // Dense-pool fast path: a session whose remap is the identity
        // over the entire global pool reconstructs to a table equal to
        // the pool itself (the pool was already validated dense and
        // duplicate-free), so clone the interner instead of re-interning
        // every name. Fleets of same-workload sessions hit this for all
        // but the first session.
        let identity = remap_ids.len() == global.len()
            && remap_ids
                .iter()
                .enumerate()
                .all(|(i, &id)| id as usize == i);
        let symbols = if identity {
            global.clone()
        } else {
            let mut symbols = SymbolTable::with_capacity(remap_len.min(1 << 16) as usize);
            for (local, &raw) in remap_ids.iter().enumerate() {
                let global_id = SymbolId::from_raw(raw);
                let name = global.resolve(global_id).ok_or_else(|| {
                    TraceError::corrupt(
                        "session directory",
                        format!("remap names unknown global symbol {}", global_id.as_raw()),
                    )
                })?;
                if symbols.intern(name) != SymbolId::from_raw(local.min(u32::MAX as usize) as u32) {
                    return Err(TraceError::corrupt(
                        "session directory",
                        "remap produces a non-dense local symbol table",
                    ));
                }
            }
            symbols
        };
        let gc_count = varint::read_u64(&mut r)?;
        if gc_count > MAX_STRINGS {
            return Err(TraceError::corrupt(
                "session directory",
                format!("{gc_count} GC events exceeds cap"),
            ));
        }
        let mut gc_events = Vec::with_capacity(gc_count.min(1 << 12) as usize);
        for _ in 0..gc_count {
            let start = TimeNs::from_nanos(varint::read_u64(&mut r)?);
            let end = TimeNs::from_nanos(varint::read_u64(&mut r)?);
            if end < start {
                return Err(TraceError::corrupt(
                    "session directory",
                    "GC end precedes start",
                ));
            }
            let (major, rest) = split_byte(r, "session directory")?;
            r = rest;
            if major > 1 {
                return Err(TraceError::corrupt(
                    "session directory",
                    format!("bad bool {major}"),
                ));
            }
            gc_events.push(GcEvent {
                start,
                end,
                major: major == 1,
            });
        }
        let short_count = varint::read_u64(&mut r)?;
        let short_time = DurationNs::from_nanos(varint::read_u64(&mut r)?);
        out.push(DirEntry {
            meta,
            symbols,
            gc_events,
            short_count,
            short_time,
            health,
            salvaged,
            damaged,
            skips,
            episodes_lost,
        });
    }
    if !r.is_empty() {
        return Err(TraceError::corrupt(
            "session directory",
            "trailing bytes after the last session",
        ));
    }
    Ok(out)
}

fn read_sections(
    region: &[u8],
    session_count: u64,
    data_len: u64,
) -> Result<(Vec<Section>, Vec<Option<Section>>), TraceError> {
    let mut r = region;
    let count = varint::read_u64(&mut r)?;
    // Payload + rollup today; headroom for future kinds without letting a
    // corrupt count force an absurd parse.
    if count > session_count.saturating_mul(8).saturating_add(8) {
        return Err(TraceError::corrupt(
            "section index",
            format!("{count} sections for {session_count} sessions exceeds cap"),
        ));
    }
    let mut payloads = Vec::with_capacity(session_count.min(1 << 12) as usize);
    let mut rollups: Vec<Option<Section>> = std::iter::repeat_with(|| None)
        .take(session_count.min(1 << 20) as usize)
        .collect();
    for _ in 0..count {
        let (kind, rest) = split_byte(r, "section index")?;
        r = rest;
        let session = varint::read_u64(&mut r)?;
        let (flags, rest) = split_byte(r, "section index")?;
        r = rest;
        let offset = varint::read_u64(&mut r)?;
        let stored_len = varint::read_u64(&mut r)?;
        let raw_len = varint::read_u64(&mut r)?;
        let end = offset
            .checked_add(stored_len)
            .ok_or_else(|| TraceError::corrupt("section index", "section length overflow"))?;
        if end > data_len || raw_len > MAX_RAW_SECTION {
            return Err(TraceError::corrupt(
                "section index",
                format!("section {offset}+{stored_len} outside the data region"),
            ));
        }
        let section = Section {
            compressed: flags & SECTION_FLAG_LZ != 0,
            offset,
            stored_len,
            raw_len,
        };
        match kind {
            SECTION_PAYLOAD => {
                if flags & !SECTION_FLAG_LZ != 0 {
                    return Err(TraceError::corrupt(
                        "section index",
                        format!("unknown section flags {flags:#x}"),
                    ));
                }
                if session != payloads.len() as u64 {
                    return Err(TraceError::corrupt(
                        "section index",
                        format!("payload section {} names session {session}", payloads.len()),
                    ));
                }
                payloads.push(section);
            }
            SECTION_ROLLUP => {
                if flags & !SECTION_FLAG_LZ != 0 {
                    return Err(TraceError::corrupt(
                        "section index",
                        format!("unknown section flags {flags:#x}"),
                    ));
                }
                let slot = rollups.get_mut(session as usize).ok_or_else(|| {
                    TraceError::corrupt(
                        "section index",
                        format!("rollup section names session {session}"),
                    )
                })?;
                if slot.is_some() {
                    return Err(TraceError::corrupt(
                        "section index",
                        format!("duplicate rollup section for session {session}"),
                    ));
                }
                *slot = Some(section);
            }
            // Unknown kinds are skipped: the record shape is
            // self-delimiting, so newer writers can add sections without
            // breaking this reader (DESIGN 5e).
            _ => {}
        }
    }
    if payloads.len() as u64 != session_count {
        return Err(TraceError::corrupt(
            "section index",
            format!(
                "{} payload sections for {session_count} sessions",
                payloads.len()
            ),
        ));
    }
    if !r.is_empty() {
        return Err(TraceError::corrupt(
            "section index",
            "trailing bytes after the last section",
        ));
    }
    Ok((payloads, rollups))
}

/// Decodes and validates one session's optional rollup section. Never
/// fails the corpus open: a malformed or stale cache degrades to
/// `(None, Stale)` and the warm path silently recomputes.
fn open_rollup(
    bytes: &[u8],
    data_off: u64,
    section: Option<Section>,
    payload_bytes: &[u8],
    extents: &[EpisodeExtent],
) -> (Option<Rollup>, RollupHealth) {
    let Some(section) = section else {
        return (None, RollupHealth::Absent);
    };
    let section_bytes = section.stored_len;
    let stale = |reason: String| {
        (
            None,
            RollupHealth::Stale {
                reason,
                section_bytes,
            },
        )
    };
    let start = (data_off + section.offset) as usize;
    let stored = &bytes[start..start + section.stored_len as usize];
    let raw;
    let raw_bytes: &[u8] = if section.compressed {
        match lz::decompress(stored, section.raw_len as usize) {
            Ok(buf) => {
                raw = buf;
                &raw
            }
            Err(err) => return stale(format!("section does not decompress: {err}")),
        }
    } else {
        if section.stored_len != section.raw_len {
            return stale("raw section with stored_len != raw_len".into());
        }
        stored
    };
    let mut pos = 0usize;
    let rollup = match Rollup::decode_payload(raw_bytes, &mut pos, raw_bytes.len()) {
        Ok(rollup) if pos == raw_bytes.len() => rollup,
        Ok(_) => return stale("trailing bytes after the rollup payload".into()),
        Err(err) => return stale(format!("payload does not decode: {err}")),
    };
    let expected = crate::rollup::content_checksum(payload_bytes);
    match crate::rollup::validate(rollup, expected, extents.len()) {
        Some(rollup) => (Some(rollup), RollupHealth::Valid { section_bytes }),
        None => stale("content checksum mismatch".into()),
    }
}

fn split_byte<'a>(r: &'a [u8], context: &'static str) -> Result<(u8, &'a [u8]), TraceError> {
    r.split_first()
        .map(|(&b, rest)| (b, rest))
        .ok_or_else(|| TraceError::corrupt(context, "unexpected end of input"))
}

/// A hand-rolled byte-oriented LZ codec for cold corpus sections.
///
/// The stream is a sequence of varint-prefixed tokens. A token `t` with
/// the low bit clear introduces a literal run of `t >> 1` bytes (copied
/// verbatim); with the low bit set it is a match of length `t >> 1`
/// (&ge; 4) followed by a varint back-distance into the already-produced
/// output (1 ..= 64 KiB). Overlapping matches are legal (RLE falls out of
/// `distance < length`). Compression is greedy over a 4-byte hash table;
/// decompression is bounds-checked everywhere and never reads outside
/// the stored section.
pub(crate) mod lz {
    use crate::error::TraceError;
    use crate::varint;

    const MIN_MATCH: usize = 4;
    const WINDOW: usize = 1 << 16;
    const HASH_BITS: u32 = 15;

    fn hash4(bytes: &[u8]) -> usize {
        let v = u32::from_le_bytes(bytes[..4].try_into().expect("4-byte slice"));
        (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
    }

    fn push_literals(out: &mut Vec<u8>, run: &[u8]) {
        if run.is_empty() {
            return;
        }
        varint::write_u64(out, (run.len() as u64) << 1).expect("vec write");
        out.extend_from_slice(run);
    }

    /// Compresses `input` (deterministic greedy LZ).
    pub fn compress(input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        let mut table = vec![usize::MAX; 1 << HASH_BITS];
        let mut pos = 0usize;
        let mut lit_start = 0usize;
        while pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let candidate = table[h];
            table[h] = pos;
            if candidate != usize::MAX
                && pos - candidate <= WINDOW
                && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH]
            {
                let mut len = MIN_MATCH;
                while pos + len < input.len() && input[candidate + len] == input[pos + len] {
                    len += 1;
                }
                push_literals(&mut out, &input[lit_start..pos]);
                varint::write_u64(&mut out, ((len as u64) << 1) | 1).expect("vec write");
                varint::write_u64(&mut out, (pos - candidate) as u64).expect("vec write");
                pos += len;
                lit_start = pos;
            } else {
                pos += 1;
            }
        }
        push_literals(&mut out, &input[lit_start..]);
        out
    }

    /// Decompresses a stored section back to exactly `raw_len` bytes.
    ///
    /// # Errors
    ///
    /// Fails on malformed tokens, out-of-window distances, or a stream
    /// that produces more or fewer than `raw_len` bytes.
    pub fn decompress(input: &[u8], raw_len: usize) -> Result<Vec<u8>, TraceError> {
        let end = input.len();
        let mut pos = 0usize;
        let mut out = Vec::with_capacity(raw_len.min(1 << 20));
        while out.len() < raw_len {
            let token = varint::read_u64_at(input, &mut pos, end)?;
            let n = (token >> 1) as usize;
            if n == 0 || out.len() + n > raw_len {
                return Err(TraceError::corrupt(
                    "compressed section",
                    "token overruns the declared raw length",
                ));
            }
            if token & 1 == 0 {
                if pos + n > end {
                    return Err(TraceError::corrupt(
                        "compressed section",
                        "literal run overruns the stored bytes",
                    ));
                }
                out.extend_from_slice(&input[pos..pos + n]);
                pos += n;
            } else {
                if n < MIN_MATCH {
                    return Err(TraceError::corrupt(
                        "compressed section",
                        format!("match shorter than {MIN_MATCH}"),
                    ));
                }
                let distance = varint::read_u64_at(input, &mut pos, end)? as usize;
                if distance == 0 || distance > out.len() || distance > WINDOW {
                    return Err(TraceError::corrupt(
                        "compressed section",
                        "match distance outside the produced output",
                    ));
                }
                let start = out.len() - distance;
                for k in 0..n {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
        }
        if pos != end {
            return Err(TraceError::corrupt(
                "compressed section",
                "trailing bytes after the last token",
            ));
        }
        Ok(out)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trips() {
            for input in [
                &b""[..],
                &b"a"[..],
                &b"abc"[..],
                &b"abcdabcdabcdabcd"[..],
                &[0u8; 1000][..],
            ] {
                let packed = compress(input);
                let back = decompress(&packed, input.len()).unwrap();
                assert_eq!(back, input);
            }
            // A long pseudo-random-ish buffer with embedded repeats.
            let mut big = Vec::new();
            for i in 0..10_000u32 {
                big.extend_from_slice(&(i.wrapping_mul(2_654_435_761)).to_le_bytes());
                if i % 7 == 0 {
                    big.extend_from_slice(b"org.example.DispatchThread.run");
                }
            }
            let packed = compress(&big);
            assert!(packed.len() < big.len(), "repeats must compress");
            assert_eq!(decompress(&packed, big.len()).unwrap(), big);
        }

        #[test]
        fn rle_compresses_through_overlap() {
            let zeros = vec![0u8; 100_000];
            let packed = compress(&zeros);
            assert!(
                packed.len() < 64,
                "RLE should collapse, got {}",
                packed.len()
            );
            assert_eq!(decompress(&packed, zeros.len()).unwrap(), zeros);
        }

        #[test]
        fn malformed_streams_rejected() {
            // Wrong raw_len (stream produces fewer bytes).
            let packed = compress(b"hello world");
            assert!(decompress(&packed, 100).is_err());
            // Declares a match before any output exists.
            let mut bogus = Vec::new();
            varint::write_u64(&mut bogus, (8u64 << 1) | 1).unwrap();
            varint::write_u64(&mut bogus, 1).unwrap();
            assert!(decompress(&bogus, 8).is_err());
            // Truncated literal run.
            let mut cut = Vec::new();
            varint::write_u64(&mut cut, 10u64 << 1).unwrap();
            cut.extend_from_slice(b"abc");
            assert!(decompress(&cut, 10).is_err());
        }
    }
}
