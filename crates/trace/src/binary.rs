//! Compact binary codec.
//!
//! Layout (all integers LEB128 unless noted):
//!
//! ```text
//! magic      8 bytes  b"LGLZTRC\x02" (the last byte is the version)
//! header     app name (len+utf8), session id, gui thread,
//!            end-to-end ns, filter threshold ns
//! records    count, then each record: 1 tag byte + payload
//! footer     v2 only: the episode extent index (see [`crate::index`]),
//!            self-checksummed and locatable from the end of the file
//! trailer    8 bytes little-endian FNV-1a checksum over
//!            header+records+footer
//! ```
//!
//! The checksum lets the reader detect truncation and bit rot before
//! handing malformed structures to the analyses. Version 1 files (no
//! footer) remain fully readable; [`write_legacy`] still produces them.

use std::io::{Read, Write};

use lagalyzer_model::prelude::*;

use crate::error::TraceError;
use crate::record::{records_from_trace, trace_from_records, TraceRecord};
use crate::varint;

/// The legacy footerless format.
const MAGIC_V1: &[u8; 8] = b"LGLZTRC\x01";

/// The current format, carrying an episode extent index footer.
const MAGIC_V2: &[u8; 8] = b"LGLZTRC\x02";

/// The version-independent format signature (byte 8 of the magic is the
/// version); used by format sniffing and salvage decoding.
pub(crate) const MAGIC_PREFIX: &[u8] = b"LGLZTRC";

/// Cap on the declared record count; anything larger is corrupt.
pub(crate) const MAX_RECORDS: u64 = 1 << 32;

/// Record tag bytes.
pub(crate) mod tag {
    pub const SYMBOL: u8 = 1;
    pub const GC: u8 = 2;
    pub const SHORT: u8 = 3;
    pub const EP_BEGIN: u8 = 4;
    pub const ENTER: u8 = 5;
    pub const EXIT: u8 = 6;
    pub const SAMPLE: u8 = 7;
    pub const EP_END: u8 = 8;
}

/// Streaming FNV-1a hasher used for the trailer checksum.
#[derive(Clone, Debug)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// A writer adapter that hashes and counts everything it forwards (the
/// count gives the extent index its byte offsets).
struct HashingWriter<W> {
    inner: W,
    hash: Fnv1a,
    written: u64,
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter that hashes everything it yields.
struct HashingReader<R> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
}

/// Serializes a trace to the binary format (v2: records followed by the
/// episode extent index footer).
///
/// A `&mut` reference may be passed for `w` (it also implements `Write`).
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write<W: Write>(trace: &SessionTrace, w: W) -> Result<(), TraceError> {
    write_impl(trace, w, true, None)
}

/// Serializes a trace in the legacy v1 layout — no extent index footer —
/// for compatibility fixtures and readers that predate the index.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_legacy<W: Write>(trace: &SessionTrace, w: W) -> Result<(), TraceError> {
    write_impl(trace, w, false, None)
}

/// Serializes a trace to the v2 binary format with a persisted rollup
/// section appended after the extent footer (inside the trailer-checksummed
/// region). The rollup's content checksum is stamped here — it is the
/// trailer hash's running state at the section boundary — so callers
/// cannot produce a rollup that disagrees with its own trace.
///
/// # Errors
///
/// Propagates I/O failures from `w`.
pub fn write_with_rollup<W: Write>(
    trace: &SessionTrace,
    w: W,
    rollup: crate::rollup::Rollup,
) -> Result<(), TraceError> {
    write_impl(trace, w, true, Some(rollup))
}

fn write_impl<W: Write>(
    trace: &SessionTrace,
    w: W,
    with_footer: bool,
    rollup: Option<crate::rollup::Rollup>,
) -> Result<(), TraceError> {
    let mut hw = HashingWriter {
        inner: w,
        hash: Fnv1a::new(),
        written: 0,
    };
    hw.inner
        .write_all(if with_footer { MAGIC_V2 } else { MAGIC_V1 })?;
    write_header(trace.meta(), &mut hw)?;
    let records = records_from_trace(trace);
    varint::write_u64(&mut hw, records.len() as u64)?;
    // The writer emits one EpisodeEnd per episode, in dispatch order, so
    // the k-th end record closes `trace.episodes()[k]` — that pairing
    // supplies the extent metadata without re-deriving it from records.
    let mut extents = Vec::with_capacity(if with_footer {
        trace.episodes().len()
    } else {
        0
    });
    let mut begin_at = 0u64;
    for rec in &records {
        if with_footer && matches!(rec, TraceRecord::EpisodeBegin { .. }) {
            begin_at = 8 + hw.written;
        }
        write_record(rec, &mut hw)?;
        if with_footer && matches!(rec, TraceRecord::EpisodeEnd) {
            let episode = &trace.episodes()[extents.len()];
            extents.push(crate::index::EpisodeExtent {
                offset: begin_at,
                len: 8 + hw.written - begin_at,
                id: episode.id(),
                start: episode.start(),
                end: episode.end(),
                intervals: episode.tree().len().min(u32::MAX as usize) as u32,
                samples: episode.samples().len().min(u32::MAX as usize) as u32,
                skips: 0,
            });
        }
    }
    if with_footer {
        let footer = crate::index::encode_footer(&extents)?;
        // Through the hasher: the trailer checksum covers the footer.
        hw.write_all(&footer)?;
    }
    if let Some(mut rollup) = rollup {
        // The content checksum is the trailer hash's running state at the
        // section boundary. The reader re-derives it as a snapshot of its
        // own (single) trailer pass, so validating the cache costs no
        // second pass over the payload; a rollup-unaware rewriter that
        // recomputes the trailer still cannot keep this snapshot current.
        rollup.content_checksum = hw.hash.finish();
        let section = crate::rollup::encode_section(&rollup)?;
        // Also through the hasher: the trailer checksum covers the rollup.
        hw.write_all(&section)?;
    }
    let checksum = hw.hash.finish();
    hw.inner.write_all(&checksum.to_le_bytes())?;
    hw.inner.flush()?;
    Ok(())
}

/// Deserializes a trace from the binary format.
///
/// A `&mut` reference may be passed for `r` (it also implements `Read`).
/// For traces too large to hold decoded, use [`Reader`] to stream records.
///
/// # Errors
///
/// Fails on I/O errors, bad magic, checksum mismatch, malformed records, or
/// model-invariant violations.
pub fn read<R: Read>(r: R) -> Result<SessionTrace, TraceError> {
    let mut reader = Reader::new(r)?;
    // The declared count is attacker-controlled until the checksum clears:
    // seed the capacity modestly and let growth follow actual decoded
    // records, so a corrupt count cannot force a huge allocation.
    let mut records = Vec::with_capacity(reader.remaining().min(4096) as usize);
    while let Some(record) = reader.next_record()? {
        records.push(record);
    }
    Ok(trace_from_records(reader.into_meta(), records)?)
}

/// A streaming binary-trace reader: yields one [`TraceRecord`] at a time
/// so arbitrarily large traces can be processed without holding the whole
/// decoded stream in memory (e.g. counting records, splitting a trace, or
/// feeding an incremental analysis).
///
/// The trailer checksum is verified when the last record has been read.
///
/// ```
/// # use lagalyzer_model::prelude::*;
/// # use lagalyzer_trace::binary;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let meta = SessionMeta {
/// #     application: "X".into(),
/// #     session: SessionId::from_raw(0),
/// #     gui_thread: ThreadId::from_raw(0),
/// #     end_to_end: DurationNs::from_secs(1),
/// #     filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
/// # };
/// # let trace = SessionTraceBuilder::new(meta, SymbolTable::new()).finish();
/// # let mut bytes = Vec::new();
/// # binary::write(&trace, &mut bytes)?;
/// let mut reader = binary::Reader::new(bytes.as_slice())?;
/// assert_eq!(reader.meta().application, "X");
/// let mut n = 0;
/// while let Some(_record) = reader.next_record()? {
///     n += 1;
/// }
/// assert_eq!(n, 0);
/// # Ok(())
/// # }
/// ```
pub struct Reader<R> {
    source: HashingReader<R>,
    meta: SessionMeta,
    remaining: u64,
    verified: bool,
    version: u8,
}

impl<R: Read> Reader<R> {
    /// Opens a binary trace, reading and validating the header. Both the
    /// current (v2) and the legacy footerless (v1) layouts are accepted.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, bad magic, an unsupported version, or an
    /// absurd declared record count.
    pub fn new(r: R) -> Result<Self, TraceError> {
        let mut hr = HashingReader {
            inner: r,
            hash: Fnv1a::new(),
        };
        let mut magic = [0u8; 8];
        hr.inner.read_exact(&mut magic)?;
        if magic[..7] != *MAGIC_PREFIX {
            return Err(TraceError::corrupt("magic", format!("{magic:?}")));
        }
        let version = magic[7];
        if version != 1 && version != 2 {
            return Err(TraceError::UnsupportedVersion {
                found: u32::from(version),
            });
        }
        let meta = read_header(&mut hr)?;
        let count = varint::read_u64(&mut hr)?;
        if count > MAX_RECORDS {
            return Err(TraceError::corrupt(
                "record count",
                format!("{count} exceeds cap"),
            ));
        }
        Ok(Reader {
            source: hr,
            meta,
            remaining: count,
            verified: false,
            version,
        })
    }

    /// The session metadata from the header.
    pub fn meta(&self) -> &SessionMeta {
        &self.meta
    }

    /// Consumes the reader, moving the session metadata out (spares the
    /// clone that finishing a whole-trace read used to pay).
    pub fn into_meta(self) -> SessionMeta {
        self.meta
    }

    /// How many records are still to be read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads the next record; `None` after the last one (at which point
    /// the footer, if any, has been consumed and the trailer checksum
    /// verified).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed records, or a checksum mismatch at
    /// the end of the stream.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        if self.remaining == 0 {
            if !self.verified {
                if self.version >= 2 {
                    self.consume_footer()?;
                }
                // After the footer either the 8-byte trailer checksum or an
                // optional rollup section follows. Read the next 8 bytes
                // outside the hasher to decide which: a rollup's magic must
                // be folded into the hash by hand (the trailer covers the
                // section), the trailer itself must not be.
                let mut trailer = [0u8; 8];
                self.source.inner.read_exact(&mut trailer)?;
                if self.version >= 2 && &trailer == crate::rollup::ROLLUP_MAGIC {
                    self.source.hash.update(&trailer);
                    self.consume_section_body(crate::rollup::ROLLUP_MAGIC, "rollup section")?;
                    self.source.inner.read_exact(&mut trailer)?;
                }
                let computed = self.source.hash.finish();
                let stored = u64::from_le_bytes(trailer);
                if stored != computed {
                    return Err(TraceError::ChecksumMismatch { stored, computed });
                }
                self.verified = true;
            }
            return Ok(None);
        }
        let record = read_record(&mut self.source)?;
        self.remaining -= 1;
        Ok(Some(record))
    }

    /// Streams the v2 extent-index footer through the hasher so the
    /// trailer checksum can be verified; the extents themselves are not
    /// needed here (random access wants [`crate::IndexedTrace`]).
    fn consume_footer(&mut self) -> Result<(), TraceError> {
        let mut fmagic = [0u8; 8];
        self.source.read_exact(&mut fmagic)?;
        if &fmagic != crate::index::FOOTER_MAGIC {
            return Err(TraceError::corrupt("index footer", "bad footer magic"));
        }
        self.consume_section_body(crate::index::FOOTER_MAGIC, "index footer")
    }

    /// Streams the rest of a footer-framed section (payload length through
    /// trailing magic) through the hasher, after the leading magic has
    /// already been consumed and hashed. Shared by the extent footer and
    /// the rollup section — both use the same end-located framing.
    fn consume_section_body(
        &mut self,
        magic: &[u8; 8],
        context: &'static str,
    ) -> Result<(), TraceError> {
        let payload_len = varint::read_u64(&mut self.source)?;
        let skipped = std::io::copy(
            &mut (&mut self.source).take(payload_len),
            &mut std::io::sink(),
        )?;
        if skipped != payload_len {
            return Err(TraceError::corrupt(context, "truncated payload"));
        }
        let mut tail = [0u8; 24];
        self.source.read_exact(&mut tail)?;
        // tail[0..8] is the section's own checksum — the trailer hash
        // already covers every section byte, so it needs no re-check here.
        let total = u64::from_le_bytes(tail[8..16].try_into().expect("8-byte slice"));
        if &tail[16..24] != magic {
            return Err(TraceError::corrupt(context, "bad trailing magic"));
        }
        let expected = 8 + varint::len_u64(payload_len) + payload_len + 24;
        if total != expected {
            return Err(TraceError::corrupt(
                context,
                format!("declared length {total}, consumed {expected}"),
            ));
        }
        Ok(())
    }
}

/// Hashes a byte slice with the trailer's FNV-1a function.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// What the salvage cursor found next in the byte stream.
pub(crate) enum SalvageEvent {
    /// A structurally valid record at byte offset `at`.
    Record { at: u64, record: TraceRecord },
    /// A region that had to be skipped.
    Skip {
        at: u64,
        context: &'static str,
        detail: String,
        bytes_skipped: u64,
    },
}

/// Walks the record region of a (possibly damaged) binary trace,
/// resynchronizing after corrupt records instead of aborting.
///
/// Construction fails only when the input is unrecoverable: missing the
/// format signature or a header too damaged to establish the session
/// metadata. Everything after the header is best-effort: corrupt records
/// yield [`SalvageEvent::Skip`] and scanning resumes at the next byte
/// that starts a decodable record.
pub(crate) struct SalvageCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    payload_end: usize,
    meta: SessionMeta,
    declared: Option<u64>,
    decoded: u64,
    pending: std::collections::VecDeque<SalvageEvent>,
    checksum_ok: Option<bool>,
    finished: bool,
    /// Version >= 2: the file carries (or should carry) an index footer.
    indexed: bool,
    /// The footer was located, so `payload_end` already excludes it.
    footer_located: bool,
}

impl<'a> SalvageCursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Result<SalvageCursor<'a>, TraceError> {
        let mut pending = std::collections::VecDeque::new();
        if bytes.len() < 8 {
            return Err(TraceError::corrupt("magic", "input shorter than magic"));
        }
        if bytes[..7] != *MAGIC_PREFIX {
            return Err(TraceError::corrupt("magic", format!("{:?}", &bytes[..8])));
        }
        let version = bytes[7];
        let indexed = version >= 2;
        if version != 1 && version != 2 {
            pending.push_back(SalvageEvent::Skip {
                at: 7,
                context: "version",
                detail: format!(
                    "unsupported version {version}, decoding as v{}",
                    if indexed { 2 } else { 1 }
                ),
                bytes_skipped: 0,
            });
        }
        let mut r = &bytes[8..];
        // A header too damaged to yield the session metadata makes the
        // whole file unattributable: give up rather than invent a session.
        let meta = read_header(&mut r)?;
        let mut pos = bytes.len() - r.len();
        let declared = match varint::read_u64(&mut r) {
            Ok(n) if n <= MAX_RECORDS => Some(n),
            Ok(n) => {
                pending.push_back(SalvageEvent::Skip {
                    at: pos as u64,
                    context: "record count",
                    detail: format!("{n} exceeds cap"),
                    bytes_skipped: 0,
                });
                None
            }
            Err(e) => {
                pending.push_back(SalvageEvent::Skip {
                    at: pos as u64,
                    context: "record count",
                    detail: e.to_string(),
                    bytes_skipped: 0,
                });
                None
            }
        };
        pos = bytes.len() - r.len();
        // The trailer is the last 8 bytes — when they exist. A file cut
        // before that point has no checksum to verify.
        let (payload_end, checksum_ok) = if bytes.len() >= pos + 8 {
            let payload_end = bytes.len() - 8;
            let mut trailer = [0u8; 8];
            trailer.copy_from_slice(&bytes[payload_end..]);
            let stored = u64::from_le_bytes(trailer);
            // The hash covers header + records but not the magic (the
            // writer hashes only what flows through its HashingWriter).
            (payload_end, Some(stored == fnv1a(&bytes[8..payload_end])))
        } else {
            pending.push_back(SalvageEvent::Skip {
                at: bytes.len() as u64,
                context: "trailer",
                detail: "input ends before checksum trailer".into(),
                bytes_skipped: 0,
            });
            (bytes.len(), None)
        };
        // An indexed trace's record region ends where the footer starts.
        // An optional rollup section sits between the footer and the
        // trailer; peel it first so a clean v2-with-rollup trace does not
        // report a damaged footer. When the footer cannot be located
        // (damaged), the record scan instead stops at the declared count or
        // the footer magic — see `next_event` — so footer bytes are never
        // misread as records.
        let (payload_end, footer_located) = if indexed {
            let peeled_end = crate::rollup::peel(bytes, payload_end).end;
            match crate::index::locate_footer(bytes, peeled_end) {
                Ok((footer_start, _)) => (footer_start, true),
                Err(_) => (payload_end, false),
            }
        } else {
            (payload_end, false)
        };
        Ok(SalvageCursor {
            bytes,
            pos,
            payload_end,
            meta,
            declared,
            decoded: 0,
            pending,
            checksum_ok,
            finished: false,
            indexed,
            footer_located,
        })
    }

    pub(crate) fn meta(&self) -> &SessionMeta {
        &self.meta
    }

    pub(crate) fn into_meta(self) -> SessionMeta {
        self.meta
    }

    pub(crate) fn checksum_ok(&self) -> Option<bool> {
        self.checksum_ok
    }

    pub(crate) fn position(&self) -> u64 {
        self.pos as u64
    }

    /// The next record or skip; `None` once the record region (and the
    /// final declared-count verdict) is exhausted.
    pub(crate) fn next_event(&mut self) -> Option<SalvageEvent> {
        if let Some(ev) = self.pending.pop_front() {
            return Some(ev);
        }
        if self.finished {
            return None;
        }
        if self.pos < self.payload_end {
            // A damaged footer could not bound the record region up
            // front, so bound it here: the declared record count and the
            // footer magic both mark where records end. Without this, the
            // footer's varint payload would be misread as records and
            // could invent episodes that were never traced.
            if self.indexed && !self.footer_located {
                let at_footer =
                    self.bytes[self.pos..self.payload_end].starts_with(crate::index::FOOTER_MAGIC);
                if at_footer || Some(self.decoded) == self.declared {
                    let at = self.pos as u64;
                    let skipped = (self.payload_end - self.pos) as u64;
                    self.pos = self.payload_end;
                    return Some(SalvageEvent::Skip {
                        at,
                        context: "index footer",
                        detail: "damaged index footer region".into(),
                        bytes_skipped: skipped,
                    });
                }
            }
            let at = self.pos as u64;
            let mut r = &self.bytes[self.pos..self.payload_end];
            match read_record(&mut r) {
                Ok(record) => {
                    self.pos = self.payload_end - r.len();
                    self.decoded += 1;
                    return Some(SalvageEvent::Record { at, record });
                }
                Err(e) => {
                    // Resynchronize: the next record boundary is the next
                    // byte that is a known tag and decodes cleanly. (The
                    // probe re-decodes one record per skip — fine, skips
                    // are rare and the region is slice-bounded.)
                    let mut resync = self.payload_end;
                    for p in self.pos + 1..self.payload_end {
                        if self.indexed
                            && !self.footer_located
                            && self.bytes[p..].starts_with(crate::index::FOOTER_MAGIC)
                        {
                            // Stop at the footer boundary; the guard above
                            // skips the rest on the next call.
                            resync = p;
                            break;
                        }
                        if (tag::SYMBOL..=tag::EP_END).contains(&self.bytes[p]) {
                            let mut probe = &self.bytes[p..self.payload_end];
                            if read_record(&mut probe).is_ok() {
                                resync = p;
                                break;
                            }
                        }
                    }
                    let skipped = (resync - self.pos) as u64;
                    self.pos = resync;
                    return Some(SalvageEvent::Skip {
                        at,
                        context: "record",
                        detail: e.to_string(),
                        bytes_skipped: skipped,
                    });
                }
            }
        }
        self.finished = true;
        if let Some(declared) = self.declared {
            if declared != self.decoded {
                return Some(SalvageEvent::Skip {
                    at: self.payload_end as u64,
                    context: "record count",
                    detail: format!("declared {declared}, decoded {}", self.decoded),
                    bytes_skipped: 0,
                });
            }
        }
        None
    }
}

/// Salvage-decodes a binary trace: recovers every intact episode, skipping
/// damaged regions, and reports what was lost.
///
/// On a clean input this returns exactly what [`read`] returns, plus a
/// report whose [`SalvageReport::is_clean`](crate::SalvageReport::is_clean)
/// holds.
///
/// # Errors
///
/// Fails only when the input is unrecoverable (bad magic, or a header too
/// damaged to establish the session metadata).
pub fn read_salvage(bytes: &[u8]) -> Result<crate::salvage::Salvaged, TraceError> {
    let mut stream = crate::stream::SalvageEpisodeStream::new(bytes)?;
    let mut episodes = Vec::new();
    while let Some(episode) = stream.next_episode() {
        episodes.push(episode);
    }
    let (meta, tail, report, _extents) = stream.into_parts();
    Ok(crate::salvage::Salvaged {
        trace: crate::salvage::build_session(meta, episodes, tail),
        report,
    })
}

pub(crate) fn write_header<W: Write>(meta: &SessionMeta, w: &mut W) -> Result<(), TraceError> {
    varint::write_str(w, &meta.application)?;
    varint::write_u32(w, meta.session.as_raw())?;
    varint::write_u32(w, meta.gui_thread.as_raw())?;
    varint::write_u64(w, meta.end_to_end.as_nanos())?;
    varint::write_u64(w, meta.filter_threshold.as_nanos())?;
    Ok(())
}

pub(crate) fn read_header<R: Read>(r: &mut R) -> Result<SessionMeta, TraceError> {
    Ok(SessionMeta {
        application: varint::read_str(r)?,
        session: SessionId::from_raw(varint::read_u32(r)?),
        gui_thread: ThreadId::from_raw(varint::read_u32(r)?),
        end_to_end: DurationNs::from_nanos(varint::read_u64(r)?),
        filter_threshold: DurationNs::from_nanos(varint::read_u64(r)?),
    })
}

fn write_record<W: Write>(rec: &TraceRecord, w: &mut W) -> Result<(), TraceError> {
    match rec {
        TraceRecord::Symbol { id, name } => {
            w.write_all(&[tag::SYMBOL])?;
            varint::write_u32(w, id.as_raw())?;
            varint::write_str(w, name)?;
        }
        TraceRecord::Gc(gc) => {
            w.write_all(&[tag::GC])?;
            varint::write_u64(w, gc.start.as_nanos())?;
            varint::write_u64(w, gc.end.as_nanos())?;
            w.write_all(&[u8::from(gc.major)])?;
        }
        TraceRecord::ShortEpisodes { count, total } => {
            w.write_all(&[tag::SHORT])?;
            varint::write_u64(w, *count)?;
            varint::write_u64(w, total.as_nanos())?;
        }
        TraceRecord::EpisodeBegin { id, thread } => {
            w.write_all(&[tag::EP_BEGIN])?;
            varint::write_u32(w, id.as_raw())?;
            varint::write_u32(w, thread.as_raw())?;
        }
        TraceRecord::Enter { kind, symbol, at } => {
            w.write_all(&[tag::ENTER, kind.tag()])?;
            match symbol {
                Some(m) => {
                    w.write_all(&[1])?;
                    varint::write_u32(w, m.class.as_raw())?;
                    varint::write_u32(w, m.method.as_raw())?;
                }
                None => w.write_all(&[0])?,
            }
            varint::write_u64(w, at.as_nanos())?;
        }
        TraceRecord::Exit { at } => {
            w.write_all(&[tag::EXIT])?;
            varint::write_u64(w, at.as_nanos())?;
        }
        TraceRecord::Sample(snap) => {
            w.write_all(&[tag::SAMPLE])?;
            varint::write_u64(w, snap.time.as_nanos())?;
            varint::write_u64(w, snap.threads.len() as u64)?;
            for ts in &snap.threads {
                varint::write_u32(w, ts.thread.as_raw())?;
                w.write_all(&[ts.state.tag()])?;
                varint::write_u64(w, ts.stack.len() as u64)?;
                for frame in &ts.stack {
                    varint::write_u32(w, frame.method.class.as_raw())?;
                    varint::write_u32(w, frame.method.method.as_raw())?;
                    w.write_all(&[u8::from(frame.native)])?;
                }
            }
        }
        TraceRecord::EpisodeEnd => w.write_all(&[tag::EP_END])?,
    }
    Ok(())
}

fn read_byte<R: Read>(r: &mut R) -> Result<u8, TraceError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_bool<R: Read>(r: &mut R, context: &'static str) -> Result<bool, TraceError> {
    match read_byte(r)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(TraceError::corrupt(context, format!("bad bool {other}"))),
    }
}

pub(crate) fn read_record<R: Read>(r: &mut R) -> Result<TraceRecord, TraceError> {
    const MAX_VEC: u64 = 1 << 24;
    match read_byte(r)? {
        tag::SYMBOL => Ok(TraceRecord::Symbol {
            id: SymbolId::from_raw(varint::read_u32(r)?),
            name: varint::read_str(r)?,
        }),
        tag::GC => {
            let start = TimeNs::from_nanos(varint::read_u64(r)?);
            let end = TimeNs::from_nanos(varint::read_u64(r)?);
            if end < start {
                return Err(TraceError::corrupt("gc record", "end precedes start"));
            }
            let major = read_bool(r, "gc record")?;
            Ok(TraceRecord::Gc(GcEvent { start, end, major }))
        }
        tag::SHORT => Ok(TraceRecord::ShortEpisodes {
            count: varint::read_u64(r)?,
            total: DurationNs::from_nanos(varint::read_u64(r)?),
        }),
        tag::EP_BEGIN => Ok(TraceRecord::EpisodeBegin {
            id: EpisodeId::from_raw(varint::read_u32(r)?),
            thread: ThreadId::from_raw(varint::read_u32(r)?),
        }),
        tag::ENTER => {
            let kind_tag = read_byte(r)?;
            let kind = IntervalKind::from_tag(kind_tag).ok_or_else(|| {
                TraceError::corrupt("enter record", format!("bad kind tag {kind_tag}"))
            })?;
            let symbol = if read_bool(r, "enter record")? {
                Some(MethodRef {
                    class: SymbolId::from_raw(varint::read_u32(r)?),
                    method: SymbolId::from_raw(varint::read_u32(r)?),
                })
            } else {
                None
            };
            Ok(TraceRecord::Enter {
                kind,
                symbol,
                at: TimeNs::from_nanos(varint::read_u64(r)?),
            })
        }
        tag::EXIT => Ok(TraceRecord::Exit {
            at: TimeNs::from_nanos(varint::read_u64(r)?),
        }),
        tag::SAMPLE => {
            let time = TimeNs::from_nanos(varint::read_u64(r)?);
            let n_threads = varint::read_u64(r)?;
            if n_threads > MAX_VEC {
                return Err(TraceError::corrupt("sample record", "thread count cap"));
            }
            // Bound the upfront allocation: each element still has to be
            // decoded from real input bytes, so growth is paced by the
            // input rather than by a (possibly corrupt) declared count.
            let mut threads = Vec::with_capacity(n_threads.min(1024) as usize);
            for _ in 0..n_threads {
                let thread = ThreadId::from_raw(varint::read_u32(r)?);
                let state_tag = read_byte(r)?;
                let state = ThreadState::from_tag(state_tag).ok_or_else(|| {
                    TraceError::corrupt("sample record", format!("bad state tag {state_tag}"))
                })?;
                let n_frames = varint::read_u64(r)?;
                if n_frames > MAX_VEC {
                    return Err(TraceError::corrupt("sample record", "frame count cap"));
                }
                let mut stack = Vec::with_capacity(n_frames.min(1024) as usize);
                for _ in 0..n_frames {
                    let method = MethodRef {
                        class: SymbolId::from_raw(varint::read_u32(r)?),
                        method: SymbolId::from_raw(varint::read_u32(r)?),
                    };
                    let native = read_bool(r, "sample record")?;
                    stack.push(StackFrame { method, native });
                }
                threads.push(ThreadSample::new(thread, state, stack));
            }
            Ok(TraceRecord::Sample(SampleSnapshot::new(time, threads)))
        }
        tag::EP_END => Ok(TraceRecord::EpisodeEnd),
        other => Err(TraceError::corrupt(
            "record tag",
            format!("unknown tag {other}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn fixture() -> SessionTrace {
        let meta = SessionMeta {
            application: "JEdit".into(),
            session: SessionId::from_raw(3),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(502),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let listener = b
            .symbols_mut()
            .method("org.gjt.sp.jedit.Buffer", "keyTyped");
        let native = b.symbols_mut().method("sun.java2d.loops.Blit", "Blit");

        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.enter(IntervalKind::Listener, Some(listener), ms(1))
            .unwrap();
        t.leaf(IntervalKind::Native, Some(native), ms(5), ms(20))
            .unwrap();
        t.leaf(IntervalKind::Gc, None, ms(30), ms(45)).unwrap();
        t.exit(ms(100)).unwrap();
        t.exit(ms(104)).unwrap();
        let snap = SampleSnapshot::new(
            ms(10),
            vec![
                ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Runnable,
                    vec![StackFrame::native(native), StackFrame::java(listener)],
                ),
                ThreadSample::new(ThreadId::from_raw(1), ThreadState::Waiting, vec![]),
            ],
        );
        let e = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .sample(snap)
            .build()
            .unwrap();
        b.push_episode(e).unwrap();
        b.add_short_episodes(117_615, DurationNs::from_secs(30));
        b.push_gc(GcEvent {
            start: ms(30),
            end: ms(45),
            major: true,
        });
        b.finish()
    }

    fn encode(trace: &SessionTrace) -> Vec<u8> {
        let mut buf = Vec::new();
        write(trace, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = fixture();
        let buf = encode(&trace);
        let back = read(&mut buf.as_slice()).unwrap();
        assert_eq!(back.meta(), trace.meta());
        assert_eq!(back.episodes(), trace.episodes());
        assert_eq!(back.short_episode_count(), trace.short_episode_count());
        assert_eq!(back.short_episode_time(), trace.short_episode_time());
        assert_eq!(back.gc_events(), trace.gc_events());
    }

    #[test]
    fn binary_and_text_agree() {
        let trace = fixture();
        let bin = read(&mut encode(&trace).as_slice()).unwrap();
        let mut txt_buf = Vec::new();
        text::write(&trace, &mut txt_buf).unwrap();
        let txt = text::read(&mut txt_buf.as_slice()).unwrap();
        assert_eq!(bin.episodes(), txt.episodes());
        assert_eq!(bin.meta(), txt.meta());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = encode(&fixture());
        buf[0] = b'X';
        assert!(matches!(
            read(&mut buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = encode(&fixture());
        buf[7] = 99;
        assert!(matches!(
            read(&mut buf.as_slice()),
            Err(TraceError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn flipped_payload_bit_caught_by_checksum_or_decoder() {
        let trace = fixture();
        let buf = encode(&trace);
        // Flip every byte (one at a time) in the payload region and require
        // the reader to notice.
        let payload_end = buf.len() - 8;
        for i in 8..payload_end {
            let mut corrupted = buf.clone();
            corrupted[i] ^= 0x01;
            assert!(
                read(&mut corrupted.as_slice()).is_err(),
                "flip at offset {i} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_detected() {
        let buf = encode(&fixture());
        for cut in [buf.len() - 1, buf.len() / 2, 9] {
            assert!(read(&mut buf[..cut].as_ref()).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailer_corruption_detected() {
        let mut buf = encode(&fixture());
        let n = buf.len();
        buf[n - 1] ^= 0xff;
        assert!(matches!(
            read(&mut buf.as_slice()),
            Err(TraceError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn empty_trace_round_trips() {
        let meta = SessionMeta {
            application: String::new(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::ZERO,
            filter_threshold: DurationNs::ZERO,
        };
        let trace = SessionTraceBuilder::new(meta, SymbolTable::new()).finish();
        let back = read(&mut encode(&trace).as_slice()).unwrap();
        assert!(back.episodes().is_empty());
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a test vector: "a" hashes to 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}

#[cfg(test)]
mod reader_tests {
    use super::*;

    fn fixture_bytes() -> Vec<u8> {
        let meta = SessionMeta {
            application: "Stream".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(5),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let m = b.symbols_mut().method("a.B", "c");
        for i in 0..3u32 {
            let start = TimeNs::from_millis(u64::from(i) * 100);
            let mut t = IntervalTreeBuilder::new();
            t.enter(IntervalKind::Dispatch, None, start).unwrap();
            t.leaf(
                IntervalKind::Listener,
                Some(m),
                start + DurationNs::from_millis(1),
                start + DurationNs::from_millis(9),
            )
            .unwrap();
            t.exit(start + DurationNs::from_millis(10)).unwrap();
            b.push_episode(
                EpisodeBuilder::new(EpisodeId::from_raw(i), ThreadId::from_raw(0))
                    .tree(t.finish().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
        }
        let trace = b.finish();
        let mut buf = Vec::new();
        write(&trace, &mut buf).unwrap();
        buf
    }

    #[test]
    fn streaming_reader_yields_all_records() {
        let bytes = fixture_bytes();
        let mut reader = Reader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.meta().application, "Stream");
        let declared = reader.remaining();
        let mut n = 0;
        let mut begins = 0;
        while let Some(record) = reader.next_record().unwrap() {
            n += 1;
            if matches!(record, TraceRecord::EpisodeBegin { .. }) {
                begins += 1;
            }
        }
        assert_eq!(n, declared);
        assert_eq!(begins, 3);
        assert_eq!(reader.remaining(), 0);
        // Further calls stay at end without error.
        assert!(reader.next_record().unwrap().is_none());
    }

    #[test]
    fn streaming_reader_detects_trailer_corruption() {
        let mut bytes = fixture_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        let mut reader = Reader::new(bytes.as_slice()).unwrap();
        let result = loop {
            match reader.next_record() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(matches!(result, Err(TraceError::ChecksumMismatch { .. })));
    }

    #[test]
    fn streaming_and_whole_trace_agree() {
        let bytes = fixture_bytes();
        let whole = read(&mut bytes.as_slice()).unwrap();
        let mut reader = Reader::new(bytes.as_slice()).unwrap();
        let mut records = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            records.push(r);
        }
        let rebuilt = trace_from_records(reader.meta().clone(), records).unwrap();
        assert_eq!(rebuilt.episodes(), whole.episodes());
    }
}
