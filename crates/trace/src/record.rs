//! The flat record stream underlying both codecs.
//!
//! A [`lagalyzer_model::SessionTrace`] lowers to a linear sequence of
//! [`TraceRecord`]s — the same event vocabulary the LiLa instrumentation
//! emits — and is reassembled through the model builders, which re-validates
//! nesting, ordering and sample-window invariants on every decode.

use lagalyzer_model::prelude::*;

/// One record of a trace stream.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceRecord {
    /// Defines interned symbol `id` (ids are dense, in order).
    Symbol {
        /// The dense symbol id being defined.
        id: SymbolId,
        /// The symbol's string.
        name: String,
    },
    /// A session-level garbage collection.
    Gc(GcEvent),
    /// `count` episodes were dropped by the tracer-side filter.
    ShortEpisodes {
        /// How many episodes were dropped.
        count: u64,
        /// Their combined measured duration.
        total: DurationNs,
    },
    /// Begins an episode dispatched on `thread`.
    EpisodeBegin {
        /// The episode's id.
        id: EpisodeId,
        /// The dispatching thread.
        thread: ThreadId,
    },
    /// An interval was entered.
    Enter {
        /// Interval type.
        kind: IntervalKind,
        /// Optional symbolic information.
        symbol: Option<MethodRef>,
        /// Enter time.
        at: TimeNs,
    },
    /// The innermost open interval was exited.
    Exit {
        /// Exit time.
        at: TimeNs,
    },
    /// A call-stack sample of all threads.
    Sample(SampleSnapshot),
    /// Ends the current episode.
    EpisodeEnd,
}

/// Lowers a session trace to its record stream (excluding the header, which
/// each codec writes in its own framing).
pub fn records_from_trace(trace: &SessionTrace) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    for (id, name) in trace.symbols().iter() {
        out.push(TraceRecord::Symbol {
            id,
            name: name.to_owned(),
        });
    }
    for gc in trace.gc_events() {
        out.push(TraceRecord::Gc(*gc));
    }
    if trace.short_episode_count() > 0 {
        out.push(TraceRecord::ShortEpisodes {
            count: trace.short_episode_count(),
            total: trace.short_episode_time(),
        });
    }
    for episode in trace.episodes() {
        out.push(TraceRecord::EpisodeBegin {
            id: episode.id(),
            thread: episode.thread(),
        });
        emit_tree_events(episode.tree(), &mut out);
        for snap in episode.samples() {
            out.push(TraceRecord::Sample(snap.clone()));
        }
        out.push(TraceRecord::EpisodeEnd);
    }
    out
}

/// Emits enter/exit events for a tree in chronological order.
fn emit_tree_events(tree: &IntervalTree, out: &mut Vec<TraceRecord>) {
    fn recurse(tree: &IntervalTree, id: NodeId, out: &mut Vec<TraceRecord>) {
        let interval = tree.interval(id);
        out.push(TraceRecord::Enter {
            kind: interval.kind,
            symbol: interval.symbol,
            at: interval.start,
        });
        for &child in tree.children(id) {
            recurse(tree, child, out);
        }
        out.push(TraceRecord::Exit { at: interval.end });
    }
    recurse(tree, tree.root(), out);
}

/// Reassembles a session trace from a record stream and header metadata.
///
/// # Errors
///
/// Returns a [`ModelError`] when the stream violates a structural invariant
/// (mismatched enters/exits, samples outside their episode, out-of-order
/// episodes, ...). Symbol records may appear anywhere before first use; the
/// decoder requires their ids to be dense and in order.
pub fn trace_from_records(
    meta: SessionMeta,
    records: Vec<TraceRecord>,
) -> Result<SessionTrace, ModelError> {
    let mut symbols = SymbolTable::new();
    // First pass: intern symbols so episodes can reference them; the ids
    // must come out identical because they are dense and ordered.
    for rec in &records {
        if let TraceRecord::Symbol { id, name } = rec {
            let interned = symbols.intern(name);
            if interned != *id {
                // Out-of-order or duplicate definitions: tolerate duplicates
                // mapping to the same id, reject anything else by treating
                // it as a missing root downstream. In practice codecs only
                // produce dense streams; this guards hand-built ones.
                debug_assert_eq!(interned, *id, "non-dense symbol stream");
            }
        }
    }
    let mut builder = SessionTraceBuilder::new(meta, symbols);

    // Second pass: replay episodes.
    let mut current: Option<(
        EpisodeId,
        ThreadId,
        IntervalTreeBuilder,
        Vec<SampleSnapshot>,
    )> = None;
    for rec in records {
        match rec {
            TraceRecord::Symbol { .. } => {}
            TraceRecord::Gc(gc) => builder.push_gc(gc),
            TraceRecord::ShortEpisodes { count, total } => builder.add_short_episodes(count, total),
            TraceRecord::EpisodeBegin { id, thread } => {
                current = Some((id, thread, IntervalTreeBuilder::new(), Vec::new()));
            }
            TraceRecord::Enter { kind, symbol, at } => {
                let (_, _, tree, _) = current.as_mut().ok_or(ModelError::MissingRoot)?;
                tree.enter(kind, symbol, at)?;
            }
            TraceRecord::Exit { at } => {
                let (_, _, tree, _) = current.as_mut().ok_or(ModelError::MissingRoot)?;
                tree.exit(at)?;
            }
            TraceRecord::Sample(snap) => {
                let (_, _, _, samples) = current.as_mut().ok_or(ModelError::MissingRoot)?;
                samples.push(snap);
            }
            TraceRecord::EpisodeEnd => {
                let (id, thread, tree, samples) = current.take().ok_or(ModelError::MissingRoot)?;
                let episode = EpisodeBuilder::new(id, thread)
                    .tree(tree.finish()?)
                    .samples(samples)
                    .build()?;
                builder.push_episode(episode)?;
            }
        }
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn meta() -> SessionMeta {
        SessionMeta {
            application: "App".into(),
            session: SessionId::from_raw(2),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(60),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        }
    }

    fn sample_trace() -> SessionTrace {
        let mut b = SessionTraceBuilder::new(meta(), SymbolTable::new());
        let paint = b.symbols_mut().method("javax.swing.JFrame", "paint");
        let listener = b.symbols_mut().method("app.Main", "actionPerformed");

        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        t.enter(IntervalKind::Listener, Some(listener), ms(1))
            .unwrap();
        t.leaf(IntervalKind::Paint, Some(paint), ms(2), ms(90))
            .unwrap();
        t.exit(ms(110)).unwrap();
        t.exit(ms(120)).unwrap();
        let snap = SampleSnapshot::new(
            ms(50),
            vec![ThreadSample::new(
                ThreadId::from_raw(0),
                ThreadState::Runnable,
                vec![StackFrame::java(paint)],
            )],
        );
        let e0 = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .sample(snap)
            .build()
            .unwrap();
        b.push_episode(e0).unwrap();

        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(200)).unwrap();
        t.exit(ms(205)).unwrap();
        let e1 = EpisodeBuilder::new(EpisodeId::from_raw(1), ThreadId::from_raw(0))
            .tree(t.finish().unwrap())
            .build()
            .unwrap();
        b.push_episode(e1).unwrap();

        b.add_short_episodes(42, DurationNs::from_millis(21));
        b.push_gc(GcEvent {
            start: ms(60),
            end: ms(65),
            major: false,
        });
        b.finish()
    }

    #[test]
    fn lower_and_reassemble_round_trips() {
        let trace = sample_trace();
        let records = records_from_trace(&trace);
        let back = trace_from_records(trace.meta().clone(), records).unwrap();
        assert_eq!(back.episodes().len(), trace.episodes().len());
        assert_eq!(back.short_episode_count(), 42);
        assert_eq!(back.short_episode_time(), DurationNs::from_millis(21));
        assert_eq!(back.gc_events(), trace.gc_events());
        assert_eq!(back.episodes()[0], trace.episodes()[0]);
        assert_eq!(back.episodes()[1], trace.episodes()[1]);
        assert_eq!(back.symbols().len(), trace.symbols().len());
    }

    #[test]
    fn tree_events_are_chronological() {
        let trace = sample_trace();
        let records = records_from_trace(&trace);
        let mut last = TimeNs::ZERO;
        let mut in_episode = false;
        for rec in &records {
            let at = match rec {
                TraceRecord::EpisodeBegin { .. } => {
                    in_episode = true;
                    last = TimeNs::ZERO;
                    continue;
                }
                TraceRecord::EpisodeEnd => {
                    in_episode = false;
                    continue;
                }
                TraceRecord::Enter { at, .. } | TraceRecord::Exit { at } => *at,
                _ => continue,
            };
            if in_episode {
                assert!(at >= last, "event at {at} precedes {last}");
                last = at;
            }
        }
    }

    #[test]
    fn orphan_events_rejected() {
        let err = trace_from_records(
            meta(),
            vec![TraceRecord::Enter {
                kind: IntervalKind::Paint,
                symbol: None,
                at: ms(0),
            }],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::MissingRoot);
        let err = trace_from_records(meta(), vec![TraceRecord::EpisodeEnd]).unwrap_err();
        assert_eq!(err, ModelError::MissingRoot);
    }

    #[test]
    fn malformed_tree_rejected() {
        let records = vec![
            TraceRecord::EpisodeBegin {
                id: EpisodeId::from_raw(0),
                thread: ThreadId::from_raw(0),
            },
            TraceRecord::Enter {
                kind: IntervalKind::Dispatch,
                symbol: None,
                at: ms(0),
            },
            // Missing exit.
            TraceRecord::EpisodeEnd,
        ];
        let err = trace_from_records(meta(), records).unwrap_err();
        assert_eq!(err, ModelError::UnclosedIntervals { open: 1 });
    }

    #[test]
    fn empty_stream_gives_empty_trace() {
        let trace = trace_from_records(meta(), Vec::new()).unwrap();
        assert!(trace.episodes().is_empty());
        assert_eq!(trace.short_episode_count(), 0);
    }
}
