//! Deterministic fault injection for trace bytes.
//!
//! Test infrastructure for the salvage decoder: takes a well-formed
//! binary trace and produces a damaged variant of it — truncation, bit
//! flips, whole-record deletion or duplication, and length-field
//! inflation — without recomputing the trailer checksum, exactly like
//! real-world damage.
//!
//! # Determinism contract
//!
//! A [`FaultInjector`] is a pure function of its seed. The same seed
//! applied to the same input bytes yields the same sequence of
//! [`Fault`]s — and therefore byte-identical corrupted outputs — on
//! every run and every platform: the generator is an inline SplitMix64
//! (no external RNG, no global state, no time or pointer entropy), and
//! [`Fault::apply`] is a pure function of `(bytes, fault)`. A failing
//! test case is reproduced by re-running with the logged seed, or by
//! applying the logged `Fault` value directly.

use crate::varint;

/// One way of damaging a byte stream. Produced by [`FaultInjector`],
/// applied by [`Fault::apply`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Cut the input off at byte `at` (simulates a write that died).
    Truncate {
        /// Length of the surviving prefix.
        at: usize,
    },
    /// XOR bit `bit` of the byte at `offset` (simulates bit rot).
    BitFlip {
        /// Byte offset of the flipped bit.
        offset: usize,
        /// Bit index 0..8 within that byte.
        bit: u8,
    },
    /// Remove the `index`-th record's bytes, leaving the declared count
    /// and the checksum stale.
    DeleteRecord {
        /// Index into the record region.
        index: usize,
    },
    /// Repeat the `index`-th record's bytes immediately after itself.
    DuplicateRecord {
        /// Index into the record region.
        index: usize,
    },
    /// Rewrite the declared record count to an absurd value.
    InflateCount,
    /// Inflate the string-length prefix inside the `index`-th record
    /// (which must be a symbol record) to claim far more bytes than the
    /// input holds.
    InflateLength {
        /// Index (into the record region) of a symbol record.
        index: usize,
    },
}

impl Fault {
    /// Applies this fault to `bytes`, returning the damaged copy.
    ///
    /// Structure-dependent faults (record deletion/duplication, length
    /// inflation) fall back to returning the input unchanged when the
    /// bytes are not a well-formed binary trace — the injector only
    /// proposes them for inputs where they apply.
    pub fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        match *self {
            Fault::Truncate { at } => bytes[..at.min(bytes.len())].to_vec(),
            Fault::BitFlip { offset, bit } => {
                let mut out = bytes.to_vec();
                if let Some(b) = out.get_mut(offset) {
                    *b ^= 1 << (bit % 8);
                }
                out
            }
            Fault::DeleteRecord { index } => match layout(bytes) {
                Some(l) if index < l.records.len() => {
                    let (start, end) = l.records[index];
                    let mut out = Vec::with_capacity(bytes.len() - (end - start));
                    out.extend_from_slice(&bytes[..start]);
                    out.extend_from_slice(&bytes[end..]);
                    out
                }
                _ => bytes.to_vec(),
            },
            Fault::DuplicateRecord { index } => match layout(bytes) {
                Some(l) if index < l.records.len() => {
                    let (start, end) = l.records[index];
                    let mut out = Vec::with_capacity(bytes.len() + (end - start));
                    out.extend_from_slice(&bytes[..end]);
                    out.extend_from_slice(&bytes[start..end]);
                    out.extend_from_slice(&bytes[end..]);
                    out
                }
                _ => bytes.to_vec(),
            },
            Fault::InflateCount => match layout(bytes) {
                Some(l) => {
                    let (start, end) = l.count_span;
                    // Beyond the decoder's record-count cap of 2^32.
                    splice(bytes, start, end, &encode_varint(1 << 33))
                }
                None => bytes.to_vec(),
            },
            Fault::InflateLength { index } => match layout(bytes)
                .and_then(|l| l.records.get(index).copied())
                .and_then(|span| symbol_length_span(bytes, span))
            {
                // Claim far more than the string cap (2^20) so a decoder
                // that trusted the prefix would try a huge allocation.
                Some((start, end)) => splice(bytes, start, end, &encode_varint(1 << 30)),
                None => bytes.to_vec(),
            },
        }
    }
}

/// Seeded, deterministic source of [`Fault`]s (see the module docs for
/// the determinism contract).
#[derive(Clone, Debug)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// Creates an injector; equal seeds give equal fault sequences.
    pub fn new(seed: u64) -> Self {
        FaultInjector { state: seed }
    }

    /// SplitMix64 step.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }

    /// Picks a fault applicable to `bytes`. Structure-dependent faults
    /// are only proposed when the input parses as a binary trace with
    /// the required records.
    pub fn choose(&mut self, bytes: &[u8]) -> Fault {
        let l = layout(bytes);
        let records = l.as_ref().map_or(0, |l| l.records.len());
        let symbols: Vec<usize> = l
            .as_ref()
            .map(|l| {
                l.records
                    .iter()
                    .enumerate()
                    .filter(|(_, &(start, _))| bytes[start] == 1)
                    .map(|(i, _)| i)
                    .collect()
            })
            .unwrap_or_default();

        let mut kinds: Vec<u8> = vec![0, 1];
        if records > 0 {
            kinds.extend([2, 3]);
        }
        if l.is_some() {
            kinds.push(4);
        }
        if !symbols.is_empty() {
            kinds.push(5);
        }
        match kinds[self.below(kinds.len() as u64) as usize] {
            0 => Fault::Truncate {
                at: self.below(bytes.len().max(1) as u64) as usize,
            },
            1 => Fault::BitFlip {
                offset: self.below(bytes.len().max(1) as u64) as usize,
                bit: self.below(8) as u8,
            },
            2 => Fault::DeleteRecord {
                index: self.below(records as u64) as usize,
            },
            3 => Fault::DuplicateRecord {
                index: self.below(records as u64) as usize,
            },
            4 => Fault::InflateCount,
            _ => Fault::InflateLength {
                index: symbols[self.below(symbols.len() as u64) as usize],
            },
        }
    }

    /// Picks and applies one fault: `(damaged bytes, the fault)`.
    pub fn inject(&mut self, bytes: &[u8]) -> (Vec<u8>, Fault) {
        let fault = self.choose(bytes);
        (fault.apply(bytes), fault)
    }
}

/// Byte spans of the structural parts of a well-formed binary trace.
struct Layout {
    /// Span of the record-count varint.
    count_span: (usize, usize),
    /// Span of each record (tag byte through end of payload).
    records: Vec<(usize, usize)>,
}

/// Parses the structure of a well-formed binary trace; `None` when the
/// bytes are not one (the injector then restricts itself to byte-level
/// faults).
fn layout(bytes: &[u8]) -> Option<Layout> {
    if bytes.len() < 16 || !bytes.starts_with(b"LGLZTRC") {
        return None;
    }
    let payload = &bytes[..bytes.len() - 8];
    let mut r = &payload[8..];
    crate::binary::read_header(&mut r).ok()?;
    let count_start = payload.len() - r.len();
    let count = varint::read_u64(&mut r).ok()?;
    let count_end = payload.len() - r.len();
    if count > 1 << 20 {
        return None;
    }
    let mut records = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let start = payload.len() - r.len();
        crate::binary::read_record(&mut r).ok()?;
        records.push((start, payload.len() - r.len()));
    }
    Some(Layout {
        count_span: (count_start, count_end),
        records,
    })
}

/// Span of the string-length varint inside a symbol record at `span`.
fn symbol_length_span(bytes: &[u8], span: (usize, usize)) -> Option<(usize, usize)> {
    let (start, end) = span;
    if bytes.get(start) != Some(&1) {
        return None;
    }
    let body = &bytes[start + 1..end];
    let mut r = body;
    varint::read_u32(&mut r).ok()?; // symbol id
    let len_start = start + 1 + (body.len() - r.len());
    let before = r.len();
    varint::read_u64(&mut r).ok()?; // string length
    let len_end = len_start + (before - r.len());
    Some((len_start, len_end))
}

fn encode_varint(v: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    varint::write_u64(&mut buf, v).expect("writing to a Vec cannot fail");
    buf
}

/// Replaces `bytes[start..end]` with `replacement`.
fn splice(bytes: &[u8], start: usize, end: usize, replacement: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() - (end - start) + replacement.len());
    out.extend_from_slice(&bytes[..start]);
    out.extend_from_slice(replacement);
    out.extend_from_slice(&bytes[end..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::prelude::*;

    fn fixture_bytes() -> Vec<u8> {
        let meta = SessionMeta {
            application: "Faults".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(5),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let m = b.symbols_mut().method("app.Main", "run");
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, TimeNs::ZERO).unwrap();
        t.leaf(
            IntervalKind::Listener,
            Some(m),
            TimeNs::from_millis(1),
            TimeNs::from_millis(9),
        )
        .unwrap();
        t.exit(TimeNs::from_millis(10)).unwrap();
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        let trace = b.finish();
        let mut bytes = Vec::new();
        crate::binary::write(&trace, &mut bytes).unwrap();
        bytes
    }

    #[test]
    fn same_seed_same_faults() {
        let bytes = fixture_bytes();
        let run = |seed| {
            let mut inj = FaultInjector::new(seed);
            (0..32).map(|_| inj.inject(&bytes)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn delete_and_duplicate_change_length_by_record_size() {
        let bytes = fixture_bytes();
        let l = layout(&bytes).unwrap();
        assert!(!l.records.is_empty());
        let (start, end) = l.records[0];
        let deleted = Fault::DeleteRecord { index: 0 }.apply(&bytes);
        assert_eq!(deleted.len(), bytes.len() - (end - start));
        let duplicated = Fault::DuplicateRecord { index: 0 }.apply(&bytes);
        assert_eq!(duplicated.len(), bytes.len() + (end - start));
    }

    #[test]
    fn inflate_length_targets_a_symbol_record() {
        let bytes = fixture_bytes();
        let l = layout(&bytes).unwrap();
        let sym = l
            .records
            .iter()
            .position(|&(start, _)| bytes[start] == 1)
            .unwrap();
        let inflated = Fault::InflateLength { index: sym }.apply(&bytes);
        assert_ne!(inflated, bytes);
        // Strict decode must reject it without a huge allocation.
        assert!(crate::binary::read(inflated.as_slice()).is_err());
    }

    #[test]
    fn structural_faults_degrade_gracefully_on_garbage() {
        let garbage = b"not a trace at all".to_vec();
        for fault in [
            Fault::DeleteRecord { index: 0 },
            Fault::DuplicateRecord { index: 3 },
            Fault::InflateCount,
            Fault::InflateLength { index: 0 },
        ] {
            assert_eq!(fault.apply(&garbage), garbage);
        }
    }

    #[test]
    fn injected_faults_never_panic_salvage() {
        let bytes = fixture_bytes();
        let mut inj = FaultInjector::new(7);
        for _ in 0..256 {
            let (damaged, _fault) = inj.inject(&bytes);
            // Must return (Ok or Err), never panic.
            let _ = crate::salvage::read_bytes_salvage(&damaged);
        }
    }
}
