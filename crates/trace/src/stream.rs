//! Streaming episode-level decode.
//!
//! [`binary::Reader`](crate::binary::Reader) streams one [`TraceRecord`]
//! at a time; this module assembles those records into whole
//! [`Episode`]s on the fly, so analysis shards can be fed while the codec
//! is still reading the rest of the trace (the parallel pipeline in
//! `lagalyzer-core` consumes contiguous episode chunks, which is exactly
//! what this stream produces). The writer emits all symbol definitions and
//! session-level records before the first episode, so by the time an
//! episode is yielded its symbols are already interned.
//!
//! The trailer checksum is verified when the underlying record stream is
//! exhausted, i.e. by the time [`EpisodeStream::next_episode`] returns
//! `Ok(None)`.

use std::io::Read;

use lagalyzer_model::{
    DurationNs, Episode, EpisodeBuilder, GcEvent, IntervalTreeBuilder, ModelError, SampleSnapshot,
    SessionMeta, SymbolTable, ThreadId,
};

use crate::binary::Reader;
use crate::error::TraceError;
use crate::index::{EpisodeExtent, EpisodeFilter};
use crate::record::TraceRecord;
use crate::salvage::{SalvageReport, SkipAt};

/// Session-level data gathered while streaming episodes: the interned
/// symbols plus everything in the trace that is not an episode.
#[derive(Debug)]
pub struct StreamTail {
    /// Symbols interned from the record stream.
    pub symbols: SymbolTable,
    /// Session-level GC events.
    pub gc_events: Vec<GcEvent>,
    /// Episodes dropped by the tracer-side filter.
    pub short_episode_count: u64,
    /// Their combined measured duration.
    pub short_episode_time: DurationNs,
}

/// Streams assembled [`Episode`]s out of a binary trace.
///
/// ```
/// # use lagalyzer_model::prelude::*;
/// # use lagalyzer_trace::{binary, stream::EpisodeStream};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let meta = SessionMeta {
/// #     application: "X".into(),
/// #     session: SessionId::from_raw(0),
/// #     gui_thread: ThreadId::from_raw(0),
/// #     end_to_end: DurationNs::from_secs(1),
/// #     filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
/// # };
/// # let trace = SessionTraceBuilder::new(meta, SymbolTable::new()).finish();
/// # let mut bytes = Vec::new();
/// # binary::write(&trace, &mut bytes)?;
/// let mut stream = EpisodeStream::new(bytes.as_slice())?;
/// assert_eq!(stream.meta().application, "X");
/// while let Some(episode) = stream.next_episode()? {
///     let _ = episode.duration();
/// }
/// let tail = stream.finish()?;
/// assert_eq!(tail.short_episode_count, 0);
/// # Ok(())
/// # }
/// ```
pub struct EpisodeStream<R> {
    reader: Reader<R>,
    symbols: SymbolTable,
    gc_events: Vec<GcEvent>,
    short_count: u64,
    short_time: DurationNs,
    exhausted: bool,
    /// The episode being assembled, if a begin record was seen.
    current: Option<(lagalyzer_model::EpisodeId, ThreadId)>,
    /// Reused across episodes ([`IntervalTreeBuilder::finish_reset`]), so
    /// the open-interval stack is allocated once per stream rather than
    /// once per episode.
    builder: IntervalTreeBuilder,
    samples: Vec<SampleSnapshot>,
    filter: EpisodeFilter,
    excluded: u64,
}

impl<R: Read> EpisodeStream<R> {
    /// Opens a binary trace for episode streaming (reads the header).
    ///
    /// # Errors
    ///
    /// Fails like [`Reader::new`]: I/O errors, bad magic, an unsupported
    /// version, or an absurd record count.
    pub fn new(r: R) -> Result<Self, TraceError> {
        Ok(EpisodeStream {
            reader: Reader::new(r)?,
            symbols: SymbolTable::new(),
            gc_events: Vec::new(),
            short_count: 0,
            short_time: DurationNs::ZERO,
            exhausted: false,
            current: None,
            builder: IntervalTreeBuilder::new(),
            samples: Vec::new(),
            filter: EpisodeFilter::default(),
            excluded: 0,
        })
    }

    /// Installs an [`EpisodeFilter`]: episodes it rejects are assembled
    /// (the stream must still walk their records) but not yielded. For
    /// true skip-decode filtering use
    /// [`IndexedTrace`](crate::IndexedTrace), which never touches the
    /// excluded bytes.
    #[must_use]
    pub fn with_filter(mut self, filter: EpisodeFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Episodes assembled but withheld by the filter so far.
    pub fn excluded(&self) -> u64 {
        self.excluded
    }

    /// The session metadata from the header.
    pub fn meta(&self) -> &SessionMeta {
        self.reader.meta()
    }

    /// The symbols interned so far. The writer emits every symbol before
    /// the first episode, so once an episode has been yielded this table
    /// is complete enough to resolve it.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Assembles and returns the next episode; `None` once the stream is
    /// exhausted (at which point the trailer checksum has been verified).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, malformed records, model-invariant violations
    /// inside an episode, or a checksum mismatch at the end.
    pub fn next_episode(&mut self) -> Result<Option<Episode>, TraceError> {
        let result = self.next_episode_inner();
        if result.is_err() {
            // Match the fresh-per-episode semantics: a failed assembly
            // never leaks partial state into the next call. `reset` keeps
            // the builder's allocations for the episodes that follow.
            self.current = None;
            self.builder.reset();
            self.samples.clear();
        }
        result
    }

    fn next_episode_inner(&mut self) -> Result<Option<Episode>, TraceError> {
        while let Some(record) = self.reader.next_record()? {
            match record {
                TraceRecord::Symbol { id, name } => {
                    let interned = self.symbols.intern_owned(name);
                    debug_assert_eq!(interned, id, "non-dense symbol stream");
                }
                TraceRecord::Gc(gc) => self.gc_events.push(gc),
                TraceRecord::ShortEpisodes { count, total } => {
                    self.short_count += count;
                    self.short_time += total;
                }
                TraceRecord::EpisodeBegin { id, thread } => {
                    if self.current.replace((id, thread)).is_some() {
                        // A begin without the previous end: drop the
                        // partial assembly, as a fresh builder would.
                        self.builder.reset();
                        self.samples.clear();
                    }
                }
                TraceRecord::Enter { kind, symbol, at } => {
                    if self.current.is_none() {
                        return Err(ModelError::MissingRoot.into());
                    }
                    self.builder.enter(kind, symbol, at)?;
                }
                TraceRecord::Exit { at } => {
                    if self.current.is_none() {
                        return Err(ModelError::MissingRoot.into());
                    }
                    self.builder.exit(at)?;
                }
                TraceRecord::Sample(snap) => {
                    if self.current.is_none() {
                        return Err(ModelError::MissingRoot.into());
                    }
                    self.samples.push(snap);
                }
                TraceRecord::EpisodeEnd => {
                    let (id, thread) = self.current.take().ok_or(ModelError::MissingRoot)?;
                    let episode = EpisodeBuilder::new(id, thread)
                        .tree(self.builder.finish_reset()?)
                        .samples(std::mem::take(&mut self.samples))
                        .build()?;
                    if !self.filter.admits_episode(&episode) {
                        self.excluded += 1;
                        continue;
                    }
                    return Ok(Some(episode));
                }
            }
        }
        if self.current.is_some() {
            // An EpisodeBegin without its EpisodeEnd.
            return Err(ModelError::MissingRoot.into());
        }
        self.exhausted = true;
        Ok(None)
    }

    /// Consumes the stream after exhaustion, returning the session-level
    /// data that accumulated alongside the episodes.
    ///
    /// # Errors
    ///
    /// Drains any unread episodes first (so their records are validated
    /// and the checksum is checked), propagating their errors.
    pub fn finish(mut self) -> Result<StreamTail, TraceError> {
        while !self.exhausted {
            if self.next_episode()?.is_none() {
                break;
            }
        }
        Ok(StreamTail {
            symbols: self.symbols,
            gc_events: self.gc_events,
            short_episode_count: self.short_count,
            short_episode_time: self.short_time,
        })
    }
}

impl<R: Read> Iterator for EpisodeStream<R> {
    type Item = Result<Episode, TraceError>;

    /// Iterator convenience over [`EpisodeStream::next_episode`]; fused
    /// after the first error.
    fn next(&mut self) -> Option<Self::Item> {
        if self.exhausted {
            return None;
        }
        match self.next_episode() {
            Ok(Some(episode)) => Some(Ok(episode)),
            Ok(None) => None,
            Err(e) => {
                self.exhausted = true;
                Some(Err(e))
            }
        }
    }
}

/// Streams episodes out of a possibly damaged binary trace, salvaging
/// what it can.
///
/// Unlike [`EpisodeStream`], episode delivery is infallible: damage drops
/// the affected episode and is recorded in the [`SalvageReport`] returned
/// by [`finish`](SalvageEpisodeStream::finish). Construction fails only
/// on an unrecoverable input (bad magic or an undecodable header).
///
/// ```
/// # use lagalyzer_model::prelude::*;
/// # use lagalyzer_trace::{binary, stream::SalvageEpisodeStream};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let meta = SessionMeta {
/// #     application: "X".into(),
/// #     session: SessionId::from_raw(0),
/// #     gui_thread: ThreadId::from_raw(0),
/// #     end_to_end: DurationNs::from_secs(1),
/// #     filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
/// # };
/// # let trace = SessionTraceBuilder::new(meta, SymbolTable::new()).finish();
/// # let mut bytes = Vec::new();
/// # binary::write(&trace, &mut bytes)?;
/// let mut stream = SalvageEpisodeStream::new(&bytes)?;
/// while let Some(episode) = stream.next_episode() {
///     let _ = episode.duration();
/// }
/// let (_tail, report) = stream.finish();
/// assert!(report.is_clean());
/// # Ok(())
/// # }
/// ```
pub struct SalvageEpisodeStream<'a> {
    cursor: crate::binary::SalvageCursor<'a>,
    assembler: crate::salvage::Assembler,
    done: bool,
    extents: Vec<EpisodeExtent>,
    last_begin: u64,
    skips_attributed: usize,
}

impl<'a> SalvageEpisodeStream<'a> {
    /// Opens a binary trace for salvage streaming.
    ///
    /// # Errors
    ///
    /// Fails only on an unrecoverable input: missing magic, or a header
    /// too damaged to establish the session metadata.
    pub fn new(bytes: &'a [u8]) -> Result<Self, TraceError> {
        Ok(SalvageEpisodeStream {
            cursor: crate::binary::SalvageCursor::new(bytes)?,
            assembler: crate::salvage::Assembler::new(),
            done: false,
            extents: Vec::new(),
            last_begin: 0,
            skips_attributed: 0,
        })
    }

    /// The extent table rebuilt alongside salvage: one entry per
    /// recovered episode, with the number of skips stepped over since
    /// the previous recovery attributed to it.
    pub fn extents(&self) -> &[EpisodeExtent] {
        &self.extents
    }

    /// The session metadata from the header.
    pub fn meta(&self) -> &SessionMeta {
        self.cursor.meta()
    }

    /// The symbols recovered so far (placeholders fill lost definitions).
    pub fn symbols(&self) -> &SymbolTable {
        self.assembler.symbols()
    }

    /// The damage found so far. Complete once `next_episode` has
    /// returned `None` (or after [`finish`](Self::finish)).
    pub fn report(&self) -> &SalvageReport {
        self.assembler.report()
    }

    /// The next recoverable episode; `None` once the input is exhausted.
    /// Damage never surfaces as an error here — it is skipped and
    /// recorded in the report.
    pub fn next_episode(&mut self) -> Option<Episode> {
        if self.done {
            return None;
        }
        loop {
            match self.cursor.next_event() {
                Some(crate::binary::SalvageEvent::Record { at, record }) => {
                    if matches!(record, TraceRecord::EpisodeBegin { .. }) {
                        self.last_begin = at;
                    }
                    if let Some(episode) = self.assembler.push(SkipAt::Byte(at), record) {
                        let skips_now = self.assembler.report().skips.len();
                        self.extents.push(EpisodeExtent {
                            offset: self.last_begin,
                            len: self.cursor.position() - self.last_begin,
                            id: episode.id(),
                            start: episode.start(),
                            end: episode.end(),
                            intervals: episode.tree().len().min(u32::MAX as usize) as u32,
                            samples: episode.samples().len().min(u32::MAX as usize) as u32,
                            skips: (skips_now - self.skips_attributed).min(u32::MAX as usize)
                                as u32,
                        });
                        self.skips_attributed = skips_now;
                        return Some(episode);
                    }
                }
                Some(crate::binary::SalvageEvent::Skip {
                    at,
                    context,
                    detail,
                    bytes_skipped,
                }) => {
                    self.assembler.note_bytes_skipped(bytes_skipped);
                    self.assembler.note_skip(SkipAt::Byte(at), context, detail);
                }
                None => {
                    self.done = true;
                    self.assembler
                        .end_of_input(SkipAt::Byte(self.cursor.position()));
                    self.assembler.set_checksum(self.cursor.checksum_ok());
                    return None;
                }
            }
        }
    }

    /// Consumes the stream (draining unread episodes), returning the
    /// session-level tail and the finished damage report.
    pub fn finish(mut self) -> (StreamTail, SalvageReport) {
        while self.next_episode().is_some() {}
        self.assembler.finish()
    }

    /// Consumes the stream (draining unread episodes), moving out the
    /// session metadata, tail, report, and the rebuilt extent table.
    pub(crate) fn into_parts(
        mut self,
    ) -> (SessionMeta, StreamTail, SalvageReport, Vec<EpisodeExtent>) {
        while self.next_episode().is_some() {}
        let (tail, report) = self.assembler.finish();
        (self.cursor.into_meta(), tail, report, self.extents)
    }
}

impl Iterator for SalvageEpisodeStream<'_> {
    type Item = Episode;

    fn next(&mut self) -> Option<Episode> {
        self.next_episode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn sample_trace(episodes: usize) -> SessionTrace {
        let meta = SessionMeta {
            application: "Stream".into(),
            session: SessionId::from_raw(3),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(60),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let m = b.symbols_mut().method("app.Main", "handle");
        let mut cursor = 0u64;
        for i in 0..episodes {
            let mut t = IntervalTreeBuilder::new();
            t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
            t.leaf(
                IntervalKind::Listener,
                Some(m),
                ms(cursor + 1),
                ms(cursor + 40),
            )
            .unwrap();
            t.exit(ms(cursor + 50)).unwrap();
            let snap = SampleSnapshot::new(
                ms(cursor + 20),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Runnable,
                    vec![StackFrame::java(m)],
                )],
            );
            b.push_episode(
                EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
                    .tree(t.finish().unwrap())
                    .sample(snap)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            cursor += 100;
        }
        b.push_gc(GcEvent {
            start: ms(5),
            end: ms(7),
            major: true,
        });
        b.add_short_episodes(12, DurationNs::from_millis(30));
        b.finish()
    }

    fn encode(trace: &SessionTrace) -> Vec<u8> {
        let mut bytes = Vec::new();
        binary::write(trace, &mut bytes).unwrap();
        bytes
    }

    #[test]
    fn streams_episodes_identical_to_bulk_read() {
        let trace = sample_trace(5);
        let bytes = encode(&trace);
        let bulk = binary::read(bytes.as_slice()).unwrap();

        let mut stream = EpisodeStream::new(bytes.as_slice()).unwrap();
        assert_eq!(stream.meta(), bulk.meta());
        let mut streamed = Vec::new();
        while let Some(episode) = stream.next_episode().unwrap() {
            streamed.push(episode);
        }
        assert_eq!(streamed, bulk.episodes());
        let tail = stream.finish().unwrap();
        assert_eq!(tail.gc_events, bulk.gc_events());
        assert_eq!(tail.short_episode_count, bulk.short_episode_count());
        assert_eq!(tail.short_episode_time, bulk.short_episode_time());
        assert_eq!(tail.symbols.len(), bulk.symbols().len());
    }

    #[test]
    fn symbols_available_before_first_episode() {
        let trace = sample_trace(1);
        let bytes = encode(&trace);
        let mut stream = EpisodeStream::new(bytes.as_slice()).unwrap();
        let episode = stream.next_episode().unwrap().unwrap();
        // The episode's method symbol must already be resolvable.
        assert_eq!(stream.symbols().len(), trace.symbols().len());
        assert_eq!(episode.id(), EpisodeId::from_raw(0));
    }

    #[test]
    fn iterator_yields_all_episodes() {
        let trace = sample_trace(4);
        let bytes = encode(&trace);
        let stream = EpisodeStream::new(bytes.as_slice()).unwrap();
        let episodes: Result<Vec<Episode>, TraceError> = stream.collect();
        assert_eq!(episodes.unwrap().len(), 4);
    }

    #[test]
    fn finish_drains_unread_episodes() {
        let trace = sample_trace(3);
        let bytes = encode(&trace);
        let mut stream = EpisodeStream::new(bytes.as_slice()).unwrap();
        let _first = stream.next_episode().unwrap().unwrap();
        let tail = stream.finish().unwrap();
        assert_eq!(tail.short_episode_count, 12);
    }

    #[test]
    fn corrupted_trailer_detected_at_stream_end() {
        let trace = sample_trace(2);
        let mut bytes = encode(&trace);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut stream = EpisodeStream::new(bytes.as_slice()).unwrap();
        let result = loop {
            match stream.next_episode() {
                Ok(Some(_)) => continue,
                other => break other,
            }
        };
        assert!(
            matches!(result, Err(TraceError::ChecksumMismatch { .. })),
            "expected checksum error, got {result:?}"
        );
    }

    #[test]
    fn truncated_stream_reports_io_error() {
        let trace = sample_trace(2);
        let bytes = encode(&trace);
        // Cut the byte stream mid-episode: the reader must surface an
        // error rather than yield a partial episode.
        let cut = &bytes[..bytes.len() * 2 / 3];
        let mut stream = EpisodeStream::new(cut).unwrap();
        let mut saw_error = false;
        loop {
            match stream.next_episode() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "truncation must not decode cleanly");
    }
}
