//! Salvage-mode decoding: recover as much of a damaged trace as possible.
//!
//! The strict decoders ([`crate::binary::read`], [`crate::text::read`])
//! abort on the first malformed byte, which loses a whole session to a
//! single flipped bit or a truncated write. The salvage path instead drops
//! the episode that was in flight when damage was hit, resynchronizes on
//! the next structurally valid record boundary, and keeps going. The
//! result is a [`Salvaged`] value: the recovered session plus a
//! [`SalvageReport`] describing every region that had to be skipped.
//!
//! Guarantees (property-tested in `tests/salvage.rs`):
//!
//! - salvage decoding never panics and never allocates more than the
//!   input it was given (length fields are bounds-checked);
//! - every recovered episode is byte-identical to the corresponding
//!   episode of the undamaged original;
//! - on a clean trace, salvage produces exactly the strict decode result
//!   and a report with no skips.

use std::fmt;
use std::path::Path;

use lagalyzer_model::{
    DurationNs, Episode, EpisodeBuilder, EpisodeId, GcEvent, IntervalTreeBuilder, SampleSnapshot,
    SessionTrace, SessionTraceBuilder, SymbolId, SymbolTable, ThreadId, TimeNs,
};

use crate::error::TraceError;
use crate::record::TraceRecord;
use crate::stream::StreamTail;

/// Where in the input a skip happened: a byte offset for the binary
/// codec, a 1-based line number for the text codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipAt {
    /// Byte offset into a binary trace.
    Byte(u64),
    /// 1-based line number in a text trace.
    Line(u64),
}

impl fmt::Display for SkipAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipAt::Byte(off) => write!(f, "byte {off}"),
            SkipAt::Line(no) => write!(f, "line {no}"),
        }
    }
}

/// One region of the input that salvage decoding had to give up on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SalvageSkip {
    /// Where the damage was detected.
    pub at: SkipAt,
    /// What was being decoded (mirrors [`TraceError::Corrupt`] contexts).
    pub context: &'static str,
    /// Human-readable detail of what went wrong.
    pub detail: String,
    /// Episodes dropped because of this skip (0 or 1: the in-flight one).
    pub episodes_lost: u64,
}

impl fmt::Display for SalvageSkip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.at, self.context, self.detail)?;
        if self.episodes_lost > 0 {
            write!(f, " ({} episode(s) lost)", self.episodes_lost)?;
        }
        Ok(())
    }
}

/// Everything salvage decoding skipped, lost, and recovered.
///
/// `episodes_lost` counts episodes whose begin record was seen but which
/// could not be delivered (damage mid-episode, out-of-order starts, a
/// truncated tail). Episodes whose begin record was itself destroyed
/// leave only stray child records behind and cannot be counted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Every skipped region, in input order.
    pub skips: Vec<SalvageSkip>,
    /// Episodes delivered into the recovered session.
    pub episodes_recovered: u64,
    /// Episodes seen but dropped (sum of per-skip counts).
    pub episodes_lost: u64,
    /// Records structurally decoded (including ones later dropped as
    /// strays of a damaged episode).
    pub records_recovered: u64,
    /// Bytes stepped over while resynchronizing (binary codec).
    pub bytes_skipped: u64,
    /// Lines stepped over (text codec: malformed or non-UTF-8 lines).
    pub lines_skipped: u64,
    /// Trailer checksum verdict: `Some(true)` verified, `Some(false)`
    /// mismatch, `None` when absent (text codec, truncated trailer).
    pub checksum_ok: Option<bool>,
}

/// Three-way salvage verdict shared by every consumer that must agree on
/// what "damaged" means — `lagalyzer lint`, `lagalyzer check`, and the
/// provenance plumbing. Centralizing the classification (and the exit
/// codes derived from it) here keeps the CLI subcommands from drifting
/// apart in how they read a [`SalvageReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DamageVerdict {
    /// No skips and no checksum mismatch: salvage equals strict decode.
    Clean,
    /// The trace decoded, but records were skipped or the trailer
    /// checksum did not verify.
    Damaged,
    /// The input could not be decoded at all (no codec signature, or a
    /// header too damaged to establish session metadata).
    Unrecoverable,
}

impl DamageVerdict {
    /// Classifies a salvage report (never [`DamageVerdict::Unrecoverable`]:
    /// if a report exists, something was recovered).
    pub fn of_report(report: &SalvageReport) -> Self {
        if report.skips.is_empty() && report.checksum_ok != Some(false) {
            DamageVerdict::Clean
        } else {
            DamageVerdict::Damaged
        }
    }

    /// Classifies the outcome of a salvage attempt, mapping decode
    /// failure to [`DamageVerdict::Unrecoverable`].
    pub fn of_outcome<E>(outcome: Result<&SalvageReport, &E>) -> Self {
        match outcome {
            Ok(report) => Self::of_report(report),
            Err(_) => DamageVerdict::Unrecoverable,
        }
    }

    /// The process exit code the CLI scripting contract assigns to this
    /// verdict: 0 clean, 2 salvaged-with-damage, 3 unrecoverable (1 is
    /// reserved for usage/I-O errors and never produced here).
    pub const fn exit_code(self) -> u8 {
        match self {
            DamageVerdict::Clean => 0,
            DamageVerdict::Damaged => 2,
            DamageVerdict::Unrecoverable => 3,
        }
    }

    /// Short human-readable name used in reports.
    pub const fn describe(self) -> &'static str {
        match self {
            DamageVerdict::Clean => "clean",
            DamageVerdict::Damaged => "damaged",
            DamageVerdict::Unrecoverable => "unrecoverable",
        }
    }
}

impl SalvageReport {
    /// `true` when the input decoded without any damage: no skips and no
    /// checksum mismatch. A clean salvage equals the strict decode.
    pub fn is_clean(&self) -> bool {
        DamageVerdict::of_report(self) == DamageVerdict::Clean
    }

    /// Renders the report as human-readable text (used by `lagalyzer
    /// lint`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str("clean: no damage detected\n");
        } else {
            out.push_str("damaged trace\n");
        }
        out.push_str(&format!(
            "episodes recovered  {}\nepisodes lost       {}\nrecords recovered   {}\n",
            self.episodes_recovered, self.episodes_lost, self.records_recovered
        ));
        if self.bytes_skipped > 0 {
            out.push_str(&format!("bytes skipped       {}\n", self.bytes_skipped));
        }
        if self.lines_skipped > 0 {
            out.push_str(&format!("lines skipped       {}\n", self.lines_skipped));
        }
        match self.checksum_ok {
            Some(true) => out.push_str("checksum            ok\n"),
            Some(false) => out.push_str("checksum            MISMATCH\n"),
            None => out.push_str("checksum            absent\n"),
        }
        if !self.skips.is_empty() {
            out.push_str("skips:\n");
            for skip in &self.skips {
                out.push_str(&format!("  {skip}\n"));
            }
        }
        out
    }
}

/// A trace recovered by salvage decoding, with the damage report.
#[derive(Debug)]
pub struct Salvaged {
    /// The recovered session (possibly missing episodes, see `report`).
    pub trace: SessionTrace,
    /// What was skipped and lost on the way.
    pub report: SalvageReport,
}

/// Symbol ids are expected to be dense; a corrupt id further than this
/// beyond the current table is treated as damage instead of padded.
const MAX_SYMBOL_PAD: usize = 1 << 12;

/// An episode being assembled from its records.
struct Inflight {
    id: EpisodeId,
    thread: ThreadId,
    tree: IntervalTreeBuilder,
    samples: Vec<SampleSnapshot>,
}

/// Assembles a possibly damaged record stream into episodes and
/// session-level state, never failing: damage is recorded in the
/// [`SalvageReport`] and the surrounding episode is dropped.
///
/// Invariant: `seeking` implies no episode is in flight. While seeking
/// (after a skip or a stray record), episode-body records are ignored
/// until the next `EpisodeBegin` (or an `EpisodeEnd`, which closes the
/// damaged episode's scope).
pub(crate) struct Assembler {
    symbols: SymbolTable,
    gc_events: Vec<GcEvent>,
    short_count: u64,
    short_time: DurationNs,
    current: Option<Inflight>,
    seeking: bool,
    last_start: Option<TimeNs>,
    report: SalvageReport,
}

impl Assembler {
    pub(crate) fn new() -> Self {
        Assembler {
            symbols: SymbolTable::new(),
            gc_events: Vec::new(),
            short_count: 0,
            short_time: DurationNs::ZERO,
            current: None,
            seeking: false,
            last_start: None,
            report: SalvageReport::default(),
        }
    }

    pub(crate) fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    pub(crate) fn report(&self) -> &SalvageReport {
        &self.report
    }

    fn skip_entry(&mut self, at: SkipAt, context: &'static str, detail: String, lost: u64) {
        self.report.episodes_lost += lost;
        self.report.skips.push(SalvageSkip {
            at,
            context,
            detail,
            episodes_lost: lost,
        });
    }

    /// Notes damage detected by the decoder (not by this assembler):
    /// drops the in-flight episode and starts seeking.
    pub(crate) fn note_skip(&mut self, at: SkipAt, context: &'static str, detail: String) {
        let lost = u64::from(self.current.take().is_some());
        self.seeking = true;
        self.skip_entry(at, context, detail, lost);
    }

    pub(crate) fn note_bytes_skipped(&mut self, n: u64) {
        self.report.bytes_skipped += n;
    }

    pub(crate) fn note_lines_skipped(&mut self, n: u64) {
        self.report.lines_skipped += n;
    }

    pub(crate) fn set_checksum(&mut self, ok: Option<bool>) {
        self.report.checksum_ok = ok;
    }

    fn stray(&mut self, at: SkipAt, context: &'static str) {
        self.seeking = true;
        self.skip_entry(at, context, "record outside an episode".into(), 0);
    }

    fn drop_current(&mut self, at: SkipAt, context: &'static str, detail: String) {
        self.current = None;
        self.seeking = true;
        self.skip_entry(at, context, detail, 1);
    }

    /// Records a symbol definition, repairing gaps so ids stay dense.
    ///
    /// First definition of an id wins. A lost definition (id beyond the
    /// table) is padded with unique `<lost-symbol-N>` placeholders so
    /// later ids still resolve by position; a duplicate name under a new
    /// id also gets a placeholder to preserve density.
    fn define_symbol(&mut self, at: SkipAt, id: SymbolId, name: &str) {
        let idx = id.index();
        if idx < self.symbols.len() {
            return;
        }
        if idx > self.symbols.len() + MAX_SYMBOL_PAD {
            self.skip_entry(
                at,
                "symbol record",
                format!(
                    "id {} far beyond table of {} symbols",
                    id.as_raw(),
                    self.symbols.len()
                ),
                0,
            );
            return;
        }
        while self.symbols.len() < idx {
            let placeholder = format!("<lost-symbol-{}>", self.symbols.len());
            self.symbols.intern(&placeholder);
        }
        if self.symbols.lookup(name).is_some() {
            let placeholder = format!("<lost-symbol-{idx}>");
            self.symbols.intern(&placeholder);
        } else {
            self.symbols.intern(name);
        }
    }

    /// Applies one structurally decoded record; returns a finished
    /// episode when this record completed one. Never fails.
    pub(crate) fn push(&mut self, at: SkipAt, record: TraceRecord) -> Option<Episode> {
        self.report.records_recovered += 1;
        match record {
            TraceRecord::Symbol { id, name } => {
                self.define_symbol(at, id, &name);
                None
            }
            TraceRecord::Gc(gc) => {
                if gc.end < gc.start {
                    self.skip_entry(at, "gc record", "end precedes start".into(), 0);
                } else {
                    self.gc_events.push(gc);
                }
                None
            }
            TraceRecord::ShortEpisodes { count, total } => {
                self.short_count = self.short_count.saturating_add(count);
                self.short_time = DurationNs::from_nanos(
                    self.short_time.as_nanos().saturating_add(total.as_nanos()),
                );
                None
            }
            TraceRecord::EpisodeBegin { id, thread } => {
                if self.current.take().is_some() {
                    self.skip_entry(
                        at,
                        "episode",
                        "new episode begins before previous one ended".into(),
                        1,
                    );
                }
                self.seeking = false;
                self.current = Some(Inflight {
                    id,
                    thread,
                    tree: IntervalTreeBuilder::new(),
                    samples: Vec::new(),
                });
                None
            }
            TraceRecord::Enter {
                kind,
                symbol,
                at: t,
            } => {
                self.interval(at, "enter record", |tree| {
                    tree.enter(kind, symbol, t).map(|_| ())
                });
                None
            }
            TraceRecord::Exit { at: t } => {
                self.interval(at, "exit record", |tree| tree.exit(t).map(|_| ()));
                None
            }
            TraceRecord::Sample(snap) => {
                if self.seeking {
                    return None;
                }
                match self.current.as_mut() {
                    Some(cur) => cur.samples.push(snap),
                    None => self.stray(at, "sample record"),
                }
                None
            }
            TraceRecord::EpisodeEnd => self.finish_episode(at),
        }
    }

    /// Shared gating for `Enter`/`Exit`: ignore while seeking, report a
    /// stray outside an episode, drop the episode on a tree violation.
    fn interval<F>(&mut self, at: SkipAt, context: &'static str, apply: F)
    where
        F: FnOnce(&mut IntervalTreeBuilder) -> Result<(), lagalyzer_model::ModelError>,
    {
        if self.seeking {
            return;
        }
        let Some(cur) = self.current.as_mut() else {
            self.stray(at, context);
            return;
        };
        if let Err(e) = apply(&mut cur.tree) {
            self.drop_current(at, context, e.to_string());
        }
    }

    fn finish_episode(&mut self, at: SkipAt) -> Option<Episode> {
        if self.seeking {
            // The end of the episode that was dropped mid-flight: its
            // scope is over, stop suppressing.
            self.seeking = false;
            return None;
        }
        let Some(cur) = self.current.take() else {
            self.stray(at, "end record");
            // `stray` starts seeking, but this end is its own scope.
            self.seeking = false;
            return None;
        };
        let built = cur.tree.finish().and_then(|tree| {
            EpisodeBuilder::new(cur.id, cur.thread)
                .tree(tree)
                .samples(cur.samples)
                .build()
        });
        let episode = match built {
            Ok(ep) => ep,
            Err(e) => {
                self.skip_entry(at, "episode", e.to_string(), 1);
                return None;
            }
        };
        if let Some(last) = self.last_start {
            if episode.start() < last {
                self.skip_entry(
                    at,
                    "episode",
                    format!(
                        "starts at {} before previous episode at {}",
                        episode.start().as_nanos(),
                        last.as_nanos()
                    ),
                    1,
                );
                return None;
            }
        }
        self.last_start = Some(episode.start());
        self.report.episodes_recovered += 1;
        Some(episode)
    }

    /// Call when the record stream is exhausted: an unterminated final
    /// episode is dropped and reported.
    pub(crate) fn end_of_input(&mut self, at: SkipAt) {
        if self.current.take().is_some() {
            self.seeking = false;
            self.skip_entry(at, "episode", "input ends mid-episode".into(), 1);
        }
    }

    /// Consumes the assembler into the session-level tail and the report.
    pub(crate) fn finish(self) -> (StreamTail, SalvageReport) {
        (
            StreamTail {
                symbols: self.symbols,
                gc_events: self.gc_events,
                short_episode_count: self.short_count,
                short_episode_time: self.short_time,
            },
            self.report,
        )
    }
}

/// Builds the recovered [`SessionTrace`] out of the assembler's outputs.
pub(crate) fn build_session(
    meta: lagalyzer_model::SessionMeta,
    episodes: Vec<Episode>,
    tail: StreamTail,
) -> SessionTrace {
    let mut b = SessionTraceBuilder::new(meta, tail.symbols);
    for episode in episodes {
        // Ordering was enforced during assembly, so this cannot fail;
        // drop defensively rather than panic or propagate.
        let _ = b.push_episode(episode);
    }
    for gc in tail.gc_events {
        b.push_gc(gc);
    }
    b.add_short_episodes(tail.short_episode_count, tail.short_episode_time);
    b.finish()
}

/// Salvage-decodes a trace from bytes, sniffing binary vs text like
/// [`crate::read_bytes`].
///
/// # Errors
///
/// Fails only when the input is unrecoverable: neither codec's signature,
/// or a binary header too damaged to establish the session metadata.
pub fn read_bytes_salvage(bytes: &[u8]) -> Result<Salvaged, TraceError> {
    if bytes.starts_with(crate::binary::MAGIC_PREFIX) {
        crate::binary::read_salvage(bytes)
    } else if bytes.starts_with(crate::text::SIGNATURE_PREFIX.as_bytes()) {
        crate::text::read_salvage(bytes)
    } else {
        Err(TraceError::corrupt(
            "format",
            "neither binary nor text trace signature",
        ))
    }
}

/// Salvage-decodes a trace file (see [`read_bytes_salvage`]).
///
/// # Errors
///
/// Fails on I/O errors or an unrecoverable input.
pub fn read_path_salvage<P: AsRef<Path>>(path: P) -> Result<Salvaged, TraceError> {
    let bytes = std::fs::read(path)?;
    read_bytes_salvage(&bytes)
}
