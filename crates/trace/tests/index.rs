//! Episode extent index tests: the footer round-trips, a scan of a
//! footerless trace reconstructs the same extent table, parallel indexed
//! decode is byte-identical to the serial reader at any job count (clean
//! and salvaged inputs alike), and skip-decode filtering agrees with
//! decode-then-filter.

use lagalyzer_model::prelude::*;
use lagalyzer_trace::faults::FaultInjector;
use lagalyzer_trace::{
    binary, index, read_bytes_salvage, DurationBand, EpisodeFilter, IndexHealth, IndexedTrace,
};
use proptest::prelude::*;

fn symbol_pool() -> Vec<(&'static str, &'static str)> {
    vec![
        ("javax.swing.JFrame", "paint"),
        ("javax.swing.JComboBox", "actionPerformed"),
        ("sun.java2d.loops.DrawLine", "DrawLine"),
        ("org.app.Main", "handle"),
        ("org.app.Model", "recompute"),
    ]
}

#[derive(Clone, Debug)]
struct EpisodeSpec {
    children: Vec<(u8, u8)>, // (kind selector, symbol selector)
    dur_ms: u64,
    samples: Vec<(u64, u8)>, // (offset pct 0..100, state selector)
}

fn episode_spec() -> impl Strategy<Value = EpisodeSpec> {
    (
        proptest::collection::vec((0u8..5, 0u8..6), 0..6),
        4u64..2000,
        proptest::collection::vec((0u64..100, 0u8..4), 0..5),
    )
        .prop_map(|(children, dur_ms, samples)| EpisodeSpec {
            children,
            dur_ms,
            samples,
        })
}

fn kind_for(sel: u8) -> IntervalKind {
    match sel {
        0 => IntervalKind::Listener,
        1 => IntervalKind::Paint,
        2 => IntervalKind::Native,
        3 => IntervalKind::Async,
        _ => IntervalKind::Gc,
    }
}

fn build_trace(specs: &[EpisodeSpec], short: u64) -> SessionTrace {
    let meta = SessionMeta {
        application: "IndexApp".into(),
        session: SessionId::from_raw(0),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(3600),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
    let pool: Vec<MethodRef> = symbol_pool()
        .into_iter()
        .map(|(c, m)| b.symbols_mut().method(c, m))
        .collect();

    let mut cursor = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let start = cursor;
        let end = start + spec.dur_ms;
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(start))
            .unwrap();
        let n = spec.children.len() as u64;
        if n > 0 {
            let slot = spec.dur_ms / (n + 1);
            for (j, (ksel, ssel)) in spec.children.iter().enumerate() {
                let s = start + slot * (j as u64) + 1;
                let e = (s + slot.saturating_sub(2)).min(end);
                if e <= s {
                    continue;
                }
                let kind = kind_for(*ksel);
                let symbol = if kind == IntervalKind::Gc || *ssel as usize >= pool.len() {
                    None
                } else {
                    Some(pool[*ssel as usize])
                };
                t.leaf(kind, symbol, TimeNs::from_millis(s), TimeNs::from_millis(e))
                    .unwrap();
            }
        }
        t.exit(TimeNs::from_millis(end)).unwrap();
        let mut eb = EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
            .tree(t.finish().unwrap());
        for (pct, ssel) in &spec.samples {
            let at = start + spec.dur_ms * pct / 100;
            eb = eb.sample(SampleSnapshot::new(
                TimeNs::from_millis(at),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::ALL[*ssel as usize % 4],
                    vec![StackFrame::java(pool[*ssel as usize % pool.len()])],
                )],
            ));
        }
        b.push_episode(eb.build().unwrap()).unwrap();
        cursor = end + 10;
    }
    b.push_gc(GcEvent {
        start: TimeNs::from_millis(1),
        end: TimeNs::from_millis(2),
        major: false,
    });
    b.add_short_episodes(short, DurationNs::from_micros(short * 300));
    b.finish()
}

fn encode(trace: &SessionTrace) -> Vec<u8> {
    let mut buf = Vec::new();
    binary::write(trace, &mut buf).unwrap();
    buf
}

fn encode_legacy(trace: &SessionTrace) -> Vec<u8> {
    let mut buf = Vec::new();
    binary::write_legacy(trace, &mut buf).unwrap();
    buf
}

/// Byte-level equality of the canonical re-encoding: the strongest
/// equivalence two decoded traces can have.
fn assert_byte_identical(a: &SessionTrace, b: &SessionTrace) {
    assert_eq!(a.meta(), b.meta());
    assert_eq!(a.episodes(), b.episodes());
    assert_eq!(encode(a), encode(b));
}

fn fixed_trace(episodes: usize) -> SessionTrace {
    let specs: Vec<EpisodeSpec> = (0..episodes)
        .map(|i| EpisodeSpec {
            children: vec![(0, 0), (1, 1)],
            dur_ms: 20 + 90 * (i as u64 % 4),
            samples: vec![(50, 0)],
        })
        .collect();
    build_trace(&specs, 17)
}

#[test]
fn footer_and_scan_agree_on_extents() {
    let trace = fixed_trace(6);
    let v2 = encode(&trace);
    let legacy = encode_legacy(&trace);

    let indexed = IndexedTrace::open(v2).unwrap();
    assert_eq!(indexed.health(), &IndexHealth::FooterValid);

    let scanned = IndexedTrace::open(legacy).unwrap();
    assert_eq!(scanned.health(), &IndexHealth::FooterAbsent);

    // Header and records are byte-identical between v1 and v2, so the
    // scanned extent table must equal the footer's.
    assert_eq!(indexed.extents(), scanned.extents());
    assert_eq!(indexed.extents().len(), 6);
    for (extent, episode) in indexed.extents().iter().zip(trace.episodes()) {
        assert_eq!(extent.id, episode.id());
        assert_eq!(extent.start, episode.start());
        assert_eq!(extent.end, episode.end());
        assert_eq!(extent.duration(), episode.duration());
        assert_eq!(extent.intervals as usize, episode.tree().len());
        assert_eq!(extent.samples as usize, episode.samples().len());
        assert_eq!(extent.skips, 0);
    }
}

#[test]
fn damaged_footer_falls_back_to_scan_with_identical_extents() {
    let trace = fixed_trace(5);
    let v2 = encode(&trace);
    let reference = IndexedTrace::open(v2.clone()).unwrap();
    let footer_len = {
        let total = u64::from_le_bytes(v2[v2.len() - 24..v2.len() - 16].try_into().unwrap());
        total as usize
    };
    let footer_start = v2.len() - 8 - footer_len;

    // Flip one byte in every position of the footer (between the records
    // and the trailer). Strict open must reject each (the trailer covers
    // the footer); salvage must rebuild the very same extent table from
    // the untouched records.
    for at in footer_start..v2.len() - 8 {
        let mut damaged = v2.clone();
        damaged[at] ^= 0x01;
        assert!(IndexedTrace::open(damaged.clone()).is_err());

        let salvaged = IndexedTrace::open_salvage(damaged).unwrap();
        assert_eq!(salvaged.health(), &IndexHealth::SalvageScan);
        assert_eq!(salvaged.extents(), reference.extents());
        let report = salvaged.salvage_report().unwrap();
        assert_eq!(report.episodes_recovered, 5);
        assert_eq!(report.episodes_lost, 0);
        for jobs in [1, 3] {
            assert_byte_identical(&salvaged.par_decode(jobs).unwrap(), &trace);
        }
    }
}

#[test]
fn version_skewed_footerless_v2_reconstructs_by_scan() {
    // A legacy body stamped with the v2 version byte: the trailer still
    // verifies (the magic is outside the checksummed region), there is no
    // footer to locate, and the scan must take over.
    let trace = fixed_trace(4);
    let mut bytes = encode_legacy(&trace);
    bytes[7] = 2;
    let indexed = IndexedTrace::open(bytes).unwrap();
    assert!(
        matches!(indexed.health(), IndexHealth::FooterInvalid(_)),
        "unexpected health {:?}",
        indexed.health()
    );
    let reference = IndexedTrace::open(encode(&trace)).unwrap();
    assert_eq!(indexed.extents(), reference.extents());
    assert_byte_identical(&indexed.par_decode(2).unwrap(), &trace);
}

#[test]
fn decode_episode_is_random_access() {
    let trace = fixed_trace(7);
    let indexed = IndexedTrace::open(encode(&trace)).unwrap();
    assert_eq!(indexed.len(), 7);
    // Decode out of order; each extent stands alone.
    for i in [6, 0, 3, 5, 1, 4, 2] {
        assert_eq!(&indexed.decode_episode(i).unwrap(), &trace.episodes()[i]);
    }
}

#[test]
fn par_decode_subset_matches_full_decode_at_every_job_count() {
    let trace = fixed_trace(9);
    let indexed = IndexedTrace::open(encode(&trace)).unwrap();
    let subset = [7usize, 1, 4, 8];
    for jobs in [1, 2, 3, 8] {
        let episodes = indexed.par_decode_subset(jobs, &subset).unwrap();
        assert_eq!(episodes.len(), subset.len());
        for (got, &i) in episodes.iter().zip(&subset) {
            assert_eq!(got, &trace.episodes()[i], "episode {i} at jobs {jobs}");
        }
    }
    // Empty subsets decode nothing; out-of-range indices fail cleanly.
    assert!(indexed.par_decode_subset(2, &[]).unwrap().is_empty());
    assert!(indexed.par_decode_subset(2, &[99]).is_err());
}

#[test]
fn par_decode_subset_skips_undecodable_extents_on_salvage() {
    let trace = fixed_trace(6);
    let bytes = encode(&trace);
    // Flip a byte inside an episode's record region to break one extent,
    // then salvage-open: the subset decode must skip it, not fail.
    let salvaged = IndexedTrace::open_salvage(bytes).unwrap();
    let all: Vec<usize> = (0..salvaged.len()).collect();
    let episodes = salvaged.par_decode_subset(2, &all).unwrap();
    assert_eq!(episodes.len(), trace.episodes().len());
    // Same call on a clean open matches too.
    assert!(salvaged
        .par_decode_subset(2, &[salvaged.len() + 3])
        .unwrap()
        .is_empty());
}

#[test]
fn probe_health_classifies_without_decoding() {
    let trace = fixed_trace(2);
    let v2 = encode(&trace);
    assert_eq!(index::probe_health(&v2), Some(IndexHealth::FooterValid));
    assert_eq!(
        index::probe_health(&encode_legacy(&trace)),
        Some(IndexHealth::FooterAbsent)
    );
    let mut damaged = v2.clone();
    let n = damaged.len();
    damaged[n - 20] ^= 0xff; // inside the footer's fixed tail
    assert!(matches!(
        index::probe_health(&damaged),
        Some(IndexHealth::FooterInvalid(_))
    ));
    assert_eq!(index::probe_health(b"lagalyzer-trace v1\n"), None);
    assert_eq!(index::probe_health(b""), None);
}

#[test]
fn duration_bands_split_at_documented_thresholds() {
    let cases = [
        (DurationNs::from_millis(2), DurationBand::Short),
        (DurationNs::from_millis(3), DurationBand::Brief),
        (DurationNs::from_millis(99), DurationBand::Brief),
        (DurationNs::from_millis(100), DurationBand::Perceptible),
        (DurationNs::from_millis(999), DurationBand::Perceptible),
        (DurationNs::from_millis(1000), DurationBand::Severe),
    ];
    for (duration, band) in cases {
        assert_eq!(DurationBand::of(duration), band, "at {duration:?}");
    }
}

#[test]
fn filter_admits_extents_and_episodes_identically() {
    let trace = fixed_trace(8);
    let indexed = IndexedTrace::open(encode(&trace)).unwrap();
    let filters = [
        EpisodeFilter::new(),
        EpisodeFilter::new().min_duration(DurationNs::from_millis(100)),
        EpisodeFilter::new().window(TimeNs::from_millis(200), TimeNs::from_millis(700)),
        EpisodeFilter::new()
            .min_duration(DurationNs::from_millis(110))
            .window(TimeNs::from_millis(0), TimeNs::from_millis(500)),
    ];
    for filter in filters {
        for (extent, episode) in indexed.extents().iter().zip(trace.episodes()) {
            assert_eq!(
                filter.admits_extent(extent),
                filter.admits_episode(episode),
                "filter {filter:?} disagrees on episode {:?}",
                episode.id()
            );
        }
    }
}

/// Deterministic jobs sweep over every trace class the decoder handles:
/// clean v2, legacy v1, fault-injected-then-salvaged, and filtered. The
/// proptest suites below cover the same properties over random inputs;
/// this test pins the exact `jobs ∈ {1, 2, 3, 8}` matrix on a fixed
/// corpus so a scheduling bug cannot hide behind shrinking.
#[test]
fn par_decode_byte_identical_at_every_job_count() {
    const JOBS: [usize; 4] = [1, 2, 3, 8];
    let trace = fixed_trace(23);

    // Clean v2 (footer) and legacy v1 (scan-built index).
    let v2 = encode(&trace);
    let serial = binary::read(v2.as_slice()).unwrap();
    let indexed = IndexedTrace::open(v2.clone()).unwrap();
    let legacy = IndexedTrace::open(encode_legacy(&trace)).unwrap();
    for jobs in JOBS {
        assert_byte_identical(&indexed.par_decode(jobs).unwrap(), &serial);
        assert_byte_identical(&legacy.par_decode(jobs).unwrap(), &serial);
    }

    // Fault-injected: whenever salvage opens, every job count must agree
    // with the serial salvage reader.
    let mut injector = FaultInjector::new(0xC1);
    let mut salvaged_cases = 0;
    for _ in 0..16 {
        let (damaged, _fault) = injector.inject(&v2);
        let (Ok(serial), Ok(indexed)) = (
            read_bytes_salvage(&damaged),
            IndexedTrace::open_salvage(damaged.clone()),
        ) else {
            continue;
        };
        salvaged_cases += 1;
        for jobs in JOBS {
            assert_byte_identical(&indexed.par_decode(jobs).unwrap(), &serial.trace);
        }
    }
    assert!(salvaged_cases > 0, "no injected fault was salvageable");

    // Filter that excludes some episodes (durations alternate through
    // 20/110/200/290 ms, so a 100 ms minimum drops a quarter of them).
    let filter = EpisodeFilter::new().min_duration(DurationNs::PERCEPTIBLE_DEFAULT);
    let expected = filter.retain(serial);
    assert!(expected.episodes().len() < trace.episodes().len());
    assert!(!expected.episodes().is_empty());
    for jobs in JOBS {
        assert_byte_identical(
            &indexed.par_decode_filtered(jobs, &filter).unwrap(),
            &expected,
        );
    }
}

/// Shard batching hands each worker contiguous ascending extent ranges,
/// so the decoded episodes come back in exactly the serial order no
/// matter how many workers claim batches.
#[test]
fn shard_batching_preserves_episode_ordering() {
    let trace = fixed_trace(57);
    let indexed = IndexedTrace::open(encode(&trace)).unwrap();
    let expected: Vec<EpisodeId> = trace.episodes().iter().map(Episode::id).collect();
    for jobs in [1, 2, 3, 8] {
        let decoded = indexed.par_decode(jobs).unwrap();
        let order: Vec<EpisodeId> = decoded.episodes().iter().map(Episode::id).collect();
        assert_eq!(order, expected, "jobs={jobs} permuted the episode order");
    }
}

#[test]
fn empty_trace_round_trips_with_empty_index() {
    let trace = build_trace(&[], 0);
    let indexed = IndexedTrace::open(encode(&trace)).unwrap();
    assert!(indexed.is_empty());
    assert_eq!(indexed.health(), &IndexHealth::FooterValid);
    assert_byte_identical(&indexed.par_decode(8).unwrap(), &trace);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: indexed parallel decode is byte-identical to
    /// the serial reader at every job count, on clean traces.
    #[test]
    fn par_decode_matches_serial_reader(
        specs in proptest::collection::vec(episode_spec(), 0..10),
        short in 0u64..1_000_000,
        jobs in 0usize..9,
    ) {
        let trace = build_trace(&specs, short);
        let bytes = encode(&trace);
        let serial = binary::read(bytes.as_slice()).unwrap();
        let indexed = IndexedTrace::open(bytes).unwrap();
        prop_assert_eq!(indexed.health(), &IndexHealth::FooterValid);
        let parallel = indexed.par_decode(jobs).unwrap();
        assert_byte_identical(&parallel, &serial);
    }

    /// Legacy (footerless) traces decode identically through the scan-built
    /// index.
    #[test]
    fn par_decode_matches_serial_reader_on_legacy_traces(
        specs in proptest::collection::vec(episode_spec(), 0..8),
        jobs in 0usize..9,
    ) {
        let trace = build_trace(&specs, 3);
        let bytes = encode_legacy(&trace);
        let serial = binary::read(bytes.as_slice()).unwrap();
        let indexed = IndexedTrace::open(bytes).unwrap();
        prop_assert_eq!(indexed.health(), &IndexHealth::FooterAbsent);
        assert_byte_identical(&indexed.par_decode(jobs).unwrap(), &serial);
    }

    /// On fault-injected traces, whenever both the serial salvage reader
    /// and the indexed salvage open succeed, their decodes agree — at any
    /// job count.
    #[test]
    fn salvaged_par_decode_matches_serial_salvage(
        specs in proptest::collection::vec(episode_spec(), 1..8),
        seed in any::<u64>(),
        jobs in 0usize..9,
    ) {
        let trace = build_trace(&specs, 9);
        let bytes = encode(&trace);
        let mut injector = FaultInjector::new(seed);
        for _ in 0..3 {
            let (damaged, _fault) = injector.inject(&bytes);
            let serial = read_bytes_salvage(&damaged);
            let indexed = IndexedTrace::open_salvage(damaged);
            match (serial, indexed) {
                (Ok(serial), Ok(indexed)) => {
                    let parallel = indexed.par_decode(jobs).unwrap();
                    assert_byte_identical(&parallel, &serial.trace);
                    prop_assert_eq!(
                        indexed.salvage_report().unwrap().episodes_recovered,
                        serial.report.episodes_recovered
                    );
                }
                (Err(_), Err(_)) => {}
                (serial, indexed) => {
                    prop_assert!(
                        false,
                        "salvage outcomes diverge: serial={:?} indexed={:?}",
                        serial.map(|s| s.report),
                        indexed.map(|i| i.salvage_report().cloned())
                    );
                }
            }
        }
    }

    /// Skip-decode filtering equals decode-then-filter: evaluating the
    /// predicate against index entries admits exactly the episodes that
    /// surviving a full decode would.
    #[test]
    fn filtered_par_decode_matches_decode_then_filter(
        specs in proptest::collection::vec(episode_spec(), 0..10),
        jobs in 0usize..9,
        min_ms in 0u64..300,
        window in (0u64..500, 0u64..2000),
    ) {
        let trace = build_trace(&specs, 5);
        let bytes = encode(&trace);
        let filter = EpisodeFilter::new()
            .min_duration(DurationNs::from_millis(min_ms))
            .window(
                TimeNs::from_millis(window.0),
                TimeNs::from_millis(window.0 + window.1),
            );
        let indexed = IndexedTrace::open(bytes.clone()).unwrap();
        let fast = indexed.par_decode_filtered(jobs, &filter).unwrap();
        let slow = filter.retain(binary::read(bytes.as_slice()).unwrap());
        assert_byte_identical(&fast, &slow);
    }

    /// Garbage never panics the indexed open paths.
    #[test]
    fn indexed_open_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut input = b"LGLZTRC\x02".to_vec();
        input.extend_from_slice(&bytes);
        let _ = IndexedTrace::open(input.clone());
        let _ = IndexedTrace::open_salvage(input);
        let _ = index::probe_health(&bytes);
    }
}
