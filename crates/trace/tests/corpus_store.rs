//! Property tests for the `.lgzc` corpus container: packing N sessions
//! and decoding them out of the corpus must be byte-identical (at the
//! model level) to decoding the N original files separately — for clean
//! v2 inputs, legacy v1 inputs, and fault-injected salvaged inputs, at
//! any job count, compressed or raw. `compact` must be idempotent, and
//! the global string pool must hold each symbol exactly once.

use lagalyzer_model::prelude::*;
use lagalyzer_trace::corpus::{self, CorpusReader, PackOptions};
use lagalyzer_trace::faults::FaultInjector;
use lagalyzer_trace::{binary, EpisodeFilter, IndexedTrace};
use proptest::prelude::*;

/// Shared symbol pool — every session draws from it, so a packed corpus
/// must deduplicate these strings down to one copy each.
fn symbol_pool() -> Vec<(&'static str, &'static str)> {
    vec![
        ("javax.swing.JFrame", "paint"),
        ("javax.swing.JComboBox", "actionPerformed"),
        ("sun.java2d.loops.DrawLine", "DrawLine"),
        ("org.app.Main", "handle"),
        ("org.app.Model", "recompute"),
    ]
}

#[derive(Clone, Debug)]
struct EpisodeSpec {
    children: Vec<(u8, u8)>,
    dur_ms: u64,
    samples: Vec<(u64, u8)>,
}

fn episode_spec() -> impl Strategy<Value = EpisodeSpec> {
    (
        proptest::collection::vec((0u8..5, 0u8..6), 0..5),
        4u64..2000,
        proptest::collection::vec((0u64..100, 0u8..4), 0..4),
    )
        .prop_map(|(children, dur_ms, samples)| EpisodeSpec {
            children,
            dur_ms,
            samples,
        })
}

/// A corpus strategy: up to four sessions of up to six episodes each.
fn session_specs() -> impl Strategy<Value = Vec<Vec<EpisodeSpec>>> {
    proptest::collection::vec(proptest::collection::vec(episode_spec(), 0..6), 1..4)
}

fn kind_for(sel: u8) -> IntervalKind {
    match sel {
        0 => IntervalKind::Listener,
        1 => IntervalKind::Paint,
        2 => IntervalKind::Native,
        3 => IntervalKind::Async,
        _ => IntervalKind::Gc,
    }
}

fn build_trace(session: u32, specs: &[EpisodeSpec]) -> SessionTrace {
    let meta = SessionMeta {
        application: "CorpusApp".into(),
        session: SessionId::from_raw(session),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(3600),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
    let pool: Vec<MethodRef> = symbol_pool()
        .into_iter()
        // Sessions intern in different orders so local ids disagree
        // across sessions — the remap has to earn its keep.
        .skip(session as usize % 3)
        .chain(symbol_pool().into_iter().take(session as usize % 3))
        .map(|(c, m)| b.symbols_mut().method(c, m))
        .collect();

    let mut cursor = 5u64;
    for (i, spec) in specs.iter().enumerate() {
        let start = cursor;
        let end = start + spec.dur_ms;
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(start))
            .unwrap();
        let n = spec.children.len() as u64;
        if n > 0 {
            let slot = spec.dur_ms / (n + 1);
            for (j, (ksel, ssel)) in spec.children.iter().enumerate() {
                let s = start + slot * (j as u64) + 1;
                let e = (s + slot.saturating_sub(2)).min(end);
                if e <= s {
                    continue;
                }
                let kind = kind_for(*ksel);
                let symbol = if kind == IntervalKind::Gc || *ssel as usize >= pool.len() {
                    None
                } else {
                    Some(pool[*ssel as usize])
                };
                t.leaf(kind, symbol, TimeNs::from_millis(s), TimeNs::from_millis(e))
                    .unwrap();
            }
        }
        t.exit(TimeNs::from_millis(end)).unwrap();
        let mut eb = EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
            .tree(t.finish().unwrap());
        for (pct, ssel) in &spec.samples {
            let at = start + spec.dur_ms * pct / 100;
            eb = eb.sample(SampleSnapshot::new(
                TimeNs::from_millis(at),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::ALL[*ssel as usize % 4],
                    vec![StackFrame::java(pool[*ssel as usize % pool.len()])],
                )],
            ));
        }
        b.push_episode(eb.build().unwrap()).unwrap();
        cursor = end + 10;
    }
    if session.is_multiple_of(2) {
        b.push_gc(GcEvent {
            start: TimeNs::from_millis(1),
            end: TimeNs::from_millis(3),
            major: session.is_multiple_of(4),
        });
    }
    b.add_short_episodes(u64::from(session) * 7 + 1, DurationNs::from_micros(900));
    b.finish()
}

fn encode_all(specs: &[Vec<EpisodeSpec>], legacy_mask: u32) -> Vec<Vec<u8>> {
    specs
        .iter()
        .enumerate()
        .map(|(i, episode_specs)| {
            let trace = build_trace(i as u32, episode_specs);
            let mut buf = Vec::new();
            if legacy_mask & (1 << i) != 0 {
                binary::write_legacy(&trace, &mut buf).unwrap();
            } else {
                binary::write(&trace, &mut buf).unwrap();
            }
            buf
        })
        .collect()
}

fn symbols_vec(table: &SymbolTable) -> Vec<(u32, String)> {
    table
        .iter()
        .map(|(id, s)| (id.as_raw(), s.into()))
        .collect()
}

fn assert_same_trace(corpus_side: &SessionTrace, file_side: &SessionTrace) {
    assert_eq!(corpus_side.meta(), file_side.meta());
    assert_eq!(corpus_side.episodes(), file_side.episodes());
    assert_eq!(corpus_side.gc_events(), file_side.gc_events());
    assert_eq!(
        corpus_side.short_episode_count(),
        file_side.short_episode_count()
    );
    assert_eq!(
        corpus_side.short_episode_time(),
        file_side.short_episode_time()
    );
    assert_eq!(
        symbols_vec(corpus_side.symbols()),
        symbols_vec(file_side.symbols())
    );
}

/// Packs the given encoded files (strict or salvage open per the mask)
/// and checks corpus decodes against per-file decodes at several job
/// counts.
fn check_corpus_matches_files(files: &[Vec<u8>], salvage: bool, options: PackOptions) {
    let opened: Vec<IndexedTrace> = files
        .iter()
        .map(|bytes| {
            if salvage {
                IndexedTrace::open_salvage(bytes.clone()).unwrap()
            } else {
                IndexedTrace::open(bytes.clone()).unwrap()
            }
        })
        .collect();
    let packed = corpus::pack(&opened, options).unwrap();
    let reader = CorpusReader::open(packed).unwrap();
    assert_eq!(reader.len(), files.len());

    let expected: Vec<SessionTrace> = opened.iter().map(|t| t.par_decode(2).unwrap()).collect();
    for jobs in [1, 2, 5] {
        let decoded = reader.par_decode(jobs).unwrap();
        assert_eq!(decoded.len(), expected.len());
        for (corpus_side, file_side) in decoded.iter().zip(&expected) {
            assert_same_trace(corpus_side, file_side);
        }
    }
    // Per-session decode and O(1) random access agree too.
    for (i, file_side) in expected.iter().enumerate() {
        let view = reader.session(i);
        assert_same_trace(&view.decode(2).unwrap(), file_side);
        for (j, episode) in file_side.episodes().iter().enumerate() {
            assert_eq!(&view.decode_episode(j).unwrap(), episode);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean v2 inputs: corpus decode == per-file decode, raw and
    /// compressed, at any job count.
    #[test]
    fn pack_matches_individual_decodes(specs in session_specs()) {
        let files = encode_all(&specs, 0);
        check_corpus_matches_files(&files, false, PackOptions::default());
        check_corpus_matches_files(&files, false, PackOptions { compress: true });
    }

    /// Legacy v1 inputs (no extent footer: index built by scan) pack and
    /// decode identically too.
    #[test]
    fn legacy_v1_inputs_pack_identically(specs in session_specs(), mask in any::<u32>()) {
        let files = encode_all(&specs, mask);
        check_corpus_matches_files(&files, false, PackOptions::default());
    }

    /// Fault-injected inputs opened in salvage mode: whatever the
    /// salvage open recovers, the corpus preserves exactly.
    #[test]
    fn salvaged_inputs_pack_identically(specs in session_specs(), seed in any::<u64>()) {
        let mut files = encode_all(&specs, 0);
        let mut injector = FaultInjector::new(seed);
        let (damaged, _fault) = injector.inject(&files[0]);
        // Only keep corpora whose damaged member still opens in salvage
        // mode; unrecoverable inputs are pack's caller's problem.
        if IndexedTrace::open_salvage(damaged.clone()).is_ok() {
            files[0] = damaged;
            check_corpus_matches_files(&files, true, PackOptions::default());
            check_corpus_matches_files(&files, true, PackOptions { compress: true });
        }
    }

    /// `compact` is idempotent: compacting a compacted corpus is
    /// byte-for-byte the same file.
    #[test]
    fn compact_is_idempotent(specs in session_specs(), compress in any::<bool>()) {
        let files = encode_all(&specs, 0);
        let opened: Vec<IndexedTrace> = files
            .iter()
            .map(|b| IndexedTrace::open(b.clone()).unwrap())
            .collect();
        let options = PackOptions { compress };
        let packed = corpus::pack(&opened, options).unwrap();
        let once = corpus::compact(&CorpusReader::open(packed).unwrap(), 2, options).unwrap();
        let twice = corpus::compact(&CorpusReader::open(once.clone()).unwrap(), 2, options).unwrap();
        prop_assert_eq!(&once, &twice);
        // And compaction preserves the decoded model.
        let a = CorpusReader::open(once).unwrap().par_decode(2).unwrap();
        for (compacted, original) in a.iter().zip(opened.iter()) {
            assert_same_trace(compacted, &original.par_decode(2).unwrap());
        }
    }

    /// Filters riding the corpus extent index match the per-file
    /// filtered decode.
    #[test]
    fn filtered_decode_matches(specs in session_specs(), min_ms in 0u64..500) {
        let files = encode_all(&specs, 0);
        let opened: Vec<IndexedTrace> = files
            .iter()
            .map(|b| IndexedTrace::open(b.clone()).unwrap())
            .collect();
        let packed = corpus::pack(&opened, PackOptions::default()).unwrap();
        let reader = CorpusReader::open(packed).unwrap();
        let filter = EpisodeFilter::new().min_duration(DurationNs::from_millis(min_ms));
        for (i, trace) in opened.iter().enumerate() {
            let expected = trace.par_decode_filtered(2, &filter).unwrap();
            let got = reader.session(i).decode_filtered(2, &filter).unwrap();
            assert_same_trace(&got, &expected);
        }
    }
}

/// Symbols are interned once corpus-wide: the global pool is exactly the
/// distinct-string set, and each symbol's bytes appear exactly once in
/// the packed (raw) file.
#[test]
fn global_string_pool_is_deduplicated() {
    let specs: Vec<Vec<EpisodeSpec>> = (0..3)
        .map(|_| {
            vec![EpisodeSpec {
                children: vec![(0, 0), (1, 1), (2, 2), (3, 3), (0, 4)],
                dur_ms: 400,
                samples: vec![(50, 1)],
            }]
        })
        .collect();
    let files = encode_all(&specs, 0);
    let opened: Vec<IndexedTrace> = files
        .iter()
        .map(|b| IndexedTrace::open(b.clone()).unwrap())
        .collect();
    let packed = corpus::pack(&opened, PackOptions::default()).unwrap();
    let reader = CorpusReader::open(packed.clone()).unwrap();

    let per_session_total: usize = opened.iter().map(|t| t.symbols().len()).sum();
    let mut distinct: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for trace in &opened {
        for (_, name) in trace.symbols().iter() {
            distinct.insert(name);
        }
    }
    assert_eq!(reader.global_symbols().len(), distinct.len());
    assert!(
        reader.global_symbols().len() < per_session_total,
        "three same-pool sessions must dedup: {} global vs {} summed",
        reader.global_symbols().len(),
        per_session_total
    );
    // The strongest form: each symbol's bytes occur exactly once in the
    // whole (uncompressed) corpus file, vs once per file before packing.
    for needle in ["javax.swing.JFrame", "org.app.Model", "recompute"] {
        let count = packed
            .windows(needle.len())
            .filter(|w| *w == needle.as_bytes())
            .count();
        assert_eq!(count, 1, "{needle} stored {count} times in the corpus");
        let across_files: usize = files
            .iter()
            .map(|f| {
                f.windows(needle.len())
                    .filter(|w| *w == needle.as_bytes())
                    .count()
            })
            .sum();
        assert_eq!(
            across_files, 3,
            "{needle} duplicated across the separate files"
        );
    }
}

/// Truncation and bit flips anywhere in a corpus file never panic the
/// reader — they error (usually a checksum mismatch).
#[test]
fn corrupt_corpus_never_panics() {
    let specs = vec![vec![EpisodeSpec {
        children: vec![(0, 0)],
        dur_ms: 120,
        samples: vec![],
    }]];
    let files = encode_all(&specs, 0);
    let opened: Vec<IndexedTrace> = files
        .iter()
        .map(|b| IndexedTrace::open(b.clone()).unwrap())
        .collect();
    for options in [PackOptions::default(), PackOptions { compress: true }] {
        let packed = corpus::pack(&opened, options).unwrap();
        for cut in [0, 7, 8, 20, packed.len() / 2, packed.len() - 1] {
            assert!(CorpusReader::open(packed[..cut].to_vec()).is_err());
        }
        for i in (0..packed.len()).step_by(13) {
            let mut flipped = packed.clone();
            flipped[i] ^= 0x40;
            let _ = CorpusReader::open(flipped);
        }
    }
}

/// The corpus magic is recognized and never collides with `.lgz`.
#[test]
fn sniffing() {
    let files = encode_all(
        &[vec![EpisodeSpec {
            children: vec![],
            dur_ms: 50,
            samples: vec![],
        }]],
        0,
    );
    let opened = vec![IndexedTrace::open(files[0].clone()).unwrap()];
    let packed = corpus::pack(&opened, PackOptions::default()).unwrap();
    assert!(corpus::is_corpus(&packed));
    assert!(!corpus::is_corpus(&files[0]));
}
