//! Salvage-decoder invariants under fault injection.
//!
//! The contract (see `lagalyzer_trace::salvage`):
//!
//! 1. Salvage decoding never panics, on any input.
//! 2. Allocations are bounded by the input (adversarial length fields
//!    cannot force huge buffers).
//! 3. On a clean trace, salvage equals strict decode exactly — including
//!    every field of the report.
//! 4. A clean report implies an unmodified payload: whenever salvage
//!    reports no damage, the recovered trace equals the original.
//! 5. For faults that leave surviving record bytes untouched
//!    (truncation, count inflation, symbol-length inflation), every
//!    recovered episode is byte-identical to the uncorrupted original.

use lagalyzer_model::prelude::*;
use lagalyzer_trace::faults::{Fault, FaultInjector};
use lagalyzer_trace::salvage::SalvageReport;
use lagalyzer_trace::{binary, read_bytes_salvage, records_from_trace, text};
use proptest::prelude::*;

/// Strategy for a small pool of method symbols.
fn symbol_pool() -> Vec<(&'static str, &'static str)> {
    vec![
        ("javax.swing.JFrame", "paint"),
        ("javax.swing.JComboBox", "actionPerformed"),
        ("sun.java2d.loops.DrawLine", "DrawLine"),
        ("org.app.Main", "handle"),
        ("org.app.Model", "recompute"),
    ]
}

#[derive(Clone, Debug)]
struct EpisodeSpec {
    children: Vec<(u8, u8)>, // (kind selector, symbol selector)
    dur_ms: u64,
    samples: Vec<(u64, u8)>, // (offset pct 0..100, state selector)
}

fn episode_spec() -> impl Strategy<Value = EpisodeSpec> {
    (
        proptest::collection::vec((0u8..5, 0u8..6), 0..6),
        4u64..2000,
        proptest::collection::vec((0u64..100, 0u8..4), 0..5),
    )
        .prop_map(|(children, dur_ms, samples)| EpisodeSpec {
            children,
            dur_ms,
            samples,
        })
}

fn kind_for(sel: u8) -> IntervalKind {
    match sel {
        0 => IntervalKind::Listener,
        1 => IntervalKind::Paint,
        2 => IntervalKind::Native,
        3 => IntervalKind::Async,
        _ => IntervalKind::Gc,
    }
}

fn build_trace(specs: &[EpisodeSpec], short: u64) -> SessionTrace {
    let meta = SessionMeta {
        application: "SalvageApp".into(),
        session: SessionId::from_raw(0),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(3600),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
    let pool: Vec<MethodRef> = symbol_pool()
        .into_iter()
        .map(|(c, m)| b.symbols_mut().method(c, m))
        .collect();

    let mut cursor = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let start = cursor;
        let end = start + spec.dur_ms;
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(start))
            .unwrap();
        let n = spec.children.len() as u64;
        if n > 0 {
            let slot = spec.dur_ms / (n + 1);
            for (j, (ksel, ssel)) in spec.children.iter().enumerate() {
                let s = start + slot * (j as u64) + 1;
                let e = (s + slot.saturating_sub(2)).min(end);
                if e <= s {
                    continue;
                }
                let kind = kind_for(*ksel);
                let symbol = if kind == IntervalKind::Gc || *ssel as usize >= pool.len() {
                    None
                } else {
                    Some(pool[*ssel as usize])
                };
                t.leaf(kind, symbol, TimeNs::from_millis(s), TimeNs::from_millis(e))
                    .unwrap();
            }
        }
        t.exit(TimeNs::from_millis(end)).unwrap();
        let mut eb = EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
            .tree(t.finish().unwrap());
        for (pct, ssel) in &spec.samples {
            let at = start + spec.dur_ms * pct / 100;
            eb = eb.sample(SampleSnapshot::new(
                TimeNs::from_millis(at),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::ALL[*ssel as usize % 4],
                    vec![StackFrame::java(pool[*ssel as usize % pool.len()])],
                )],
            ));
        }
        b.push_episode(eb.build().unwrap()).unwrap();
        cursor = end + 10;
    }
    b.add_short_episodes(short, DurationNs::from_micros(short * 300));
    b.push_gc(GcEvent {
        start: TimeNs::from_millis(1),
        end: TimeNs::from_millis(2),
        major: false,
    });
    b.finish()
}

fn encode_binary(trace: &SessionTrace) -> Vec<u8> {
    let mut buf = Vec::new();
    binary::write(trace, &mut buf).unwrap();
    buf
}

fn assert_traces_equal(a: &SessionTrace, b: &SessionTrace) {
    assert_eq!(a.meta(), b.meta());
    assert_eq!(a.episodes(), b.episodes());
    assert_eq!(a.gc_events(), b.gc_events());
    assert_eq!(a.short_episode_count(), b.short_episode_count());
    assert_eq!(a.short_episode_time(), b.short_episode_time());
    assert_eq!(a.symbols().len(), b.symbols().len());
    for (id, name) in a.symbols().iter() {
        assert_eq!(b.symbols().resolve(id), Some(name));
    }
}

/// The report a clean decode must produce, field by field.
fn clean_report(trace: &SessionTrace, checksum_ok: Option<bool>) -> SalvageReport {
    SalvageReport {
        skips: Vec::new(),
        episodes_recovered: trace.episodes().len() as u64,
        episodes_lost: 0,
        records_recovered: records_from_trace(trace).len() as u64,
        bytes_skipped: 0,
        lines_skipped: 0,
        checksum_ok,
    }
}

/// Invariants that must hold for ANY input: no panic, and a clean report
/// implies the recovered trace equals the strict decode of the original.
fn check_fault_invariants(original: &SessionTrace, damaged: &[u8]) {
    match read_bytes_salvage(damaged) {
        Err(_) => {} // unrecoverable is a legal outcome, panicking is not
        Ok(salvaged) => {
            assert!(
                salvaged.report.episodes_recovered as usize <= original.episodes().len() + 1,
                "recovered more episodes than the original held"
            );
            if salvaged.report.is_clean() {
                assert_traces_equal(&salvaged.trace, original);
            }
        }
    }
}

/// Faults that leave every surviving record's bytes untouched, so every
/// recovered episode must be byte-identical to its original.
fn is_byte_preserving(fault: &Fault) -> bool {
    matches!(
        fault,
        Fault::Truncate { .. } | Fault::InflateCount | Fault::InflateLength { .. }
    )
}

proptest! {
    /// Clean binary salvage equals strict decode exactly, report included.
    #[test]
    fn clean_binary_salvage_equals_strict(
        specs in proptest::collection::vec(episode_spec(), 0..10),
        short in 0u64..1_000_000,
    ) {
        let trace = build_trace(&specs, short);
        let bytes = encode_binary(&trace);
        let strict = binary::read(bytes.as_slice()).unwrap();
        let salvaged = binary::read_salvage(&bytes).unwrap();
        assert_traces_equal(&salvaged.trace, &strict);
        prop_assert_eq!(salvaged.report, clean_report(&trace, Some(true)));
    }

    /// Clean text salvage equals strict decode exactly, report included.
    #[test]
    fn clean_text_salvage_equals_strict(
        specs in proptest::collection::vec(episode_spec(), 0..8),
        short in 0u64..1_000_000,
    ) {
        let trace = build_trace(&specs, short);
        let mut buf = Vec::new();
        text::write(&trace, &mut buf).unwrap();
        let strict = text::read(buf.as_slice()).unwrap();
        let salvaged = text::read_salvage(&buf).unwrap();
        assert_traces_equal(&salvaged.trace, &strict);
        prop_assert_eq!(salvaged.report, clean_report(&trace, None));
    }

    /// Arbitrary garbage never panics the salvage path.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_bytes_salvage(&bytes);
    }

    /// Garbage behind a valid magic exercises the binary salvage path
    /// proper (header decode, resync scanning) without panicking.
    #[test]
    fn garbage_after_magic_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut input = b"LGLZTRC\x01".to_vec();
        input.extend_from_slice(&bytes);
        let _ = read_bytes_salvage(&input);
    }

    /// Garbage lines behind a valid text header never panic.
    #[test]
    fn garbage_text_never_panics(s in "\\PC{0,400}") {
        let input = format!("lagalyzer-trace v1\n{s}");
        let _ = read_bytes_salvage(input.as_bytes());
    }

    /// Seeded fault injection on random traces: never panics; clean
    /// reports imply exact recovery; byte-preserving faults recover only
    /// byte-identical episodes.
    #[test]
    fn injected_faults_uphold_invariants(
        specs in proptest::collection::vec(episode_spec(), 1..8),
        seed in any::<u64>(),
    ) {
        let trace = build_trace(&specs, 9);
        let bytes = encode_binary(&trace);
        let mut injector = FaultInjector::new(seed);
        for _ in 0..4 {
            let (damaged, fault) = injector.inject(&bytes);
            check_fault_invariants(&trace, &damaged);
            if is_byte_preserving(&fault) {
                if let Ok(salvaged) = read_bytes_salvage(&damaged) {
                    for episode in salvaged.trace.episodes() {
                        let original = trace
                            .episodes()
                            .iter()
                            .find(|e| e.id() == episode.id())
                            .expect("recovered an episode the original never had");
                        prop_assert_eq!(episode, original);
                    }
                }
            }
        }
    }
}

/// The acceptance floor: 1k+ seeded fault cases, deterministic, in one
/// plain test (independent of the proptest case count).
#[test]
fn thousand_seeded_fault_cases() {
    let variants = [
        build_trace(&[], 0),
        build_trace(
            &[EpisodeSpec {
                children: vec![(0, 0), (1, 1)],
                dur_ms: 120,
                samples: vec![(50, 1)],
            }],
            7,
        ),
        build_trace(
            &(0..6)
                .map(|i| EpisodeSpec {
                    children: vec![(i % 5, i % 6), ((i + 1) % 5, (i + 2) % 6)],
                    dur_ms: 40 + u64::from(i) * 13,
                    samples: vec![(20, i % 4), (80, (i + 1) % 4)],
                })
                .collect::<Vec<_>>(),
            123,
        ),
        build_trace(
            &[EpisodeSpec {
                children: vec![],
                dur_ms: 5,
                samples: vec![],
            }],
            0,
        ),
    ];
    let mut cases = 0u32;
    for (v, trace) in variants.iter().enumerate() {
        let bytes = encode_binary(trace);
        let mut injector = FaultInjector::new(0xC0FFEE ^ v as u64);
        for _ in 0..256 {
            let (damaged, _fault) = injector.inject(&bytes);
            check_fault_invariants(trace, &damaged);
            cases += 1;
        }
    }
    assert!(cases >= 1024, "ran only {cases} fault cases");
}

/// Truncation at every byte boundary: salvage must never panic, and all
/// recovered episodes must be byte-identical originals (truncation can
/// never invent or alter records).
#[test]
fn truncation_at_every_offset_recovers_only_intact_episodes() {
    let trace = build_trace(
        &(0..4)
            .map(|i| EpisodeSpec {
                children: vec![(i % 5, i % 6)],
                dur_ms: 50,
                samples: vec![(40, i % 4)],
            })
            .collect::<Vec<_>>(),
        11,
    );
    let bytes = encode_binary(&trace);
    for cut in 0..bytes.len() {
        let damaged = Fault::Truncate { at: cut }.apply(&bytes);
        let Ok(salvaged) = read_bytes_salvage(&damaged) else {
            continue; // cut inside magic/header: unrecoverable, fine
        };
        for episode in salvaged.trace.episodes() {
            let original = trace
                .episodes()
                .iter()
                .find(|e| e.id() == episode.id())
                .expect("truncation invented an episode");
            assert_eq!(episode, original, "cut at {cut} altered an episode");
        }
        if cut < bytes.len() {
            assert!(
                !salvaged.report.is_clean(),
                "cut at {cut} of {} went unreported",
                bytes.len()
            );
        }
    }
}

/// Every single-bit flip either fails decode entirely or is flagged in
/// the report — damage is never silent.
#[test]
fn single_bit_flips_are_never_silent() {
    let trace = build_trace(
        &[EpisodeSpec {
            children: vec![(0, 0)],
            dur_ms: 80,
            samples: vec![(50, 0)],
        }],
        3,
    );
    let bytes = encode_binary(&trace);
    for offset in 0..bytes.len() {
        let damaged = Fault::BitFlip {
            offset,
            bit: (offset % 8) as u8,
        }
        .apply(&bytes);
        match read_bytes_salvage(&damaged) {
            Err(_) => {}
            Ok(salvaged) => assert!(
                !salvaged.report.is_clean(),
                "bit flip at byte {offset} went unreported"
            ),
        }
    }
}
