//! Golden-corpus snapshot test: every fixture under `tests/corpus/` has
//! its strict-decode outcome, salvage-decode outcome, and full semantic
//! `check --format json` report locked in `tests/corpus/EXPECTED.txt`.
//!
//! To regenerate the fixtures and the snapshot after an intentional
//! format change:
//!
//! ```text
//! LAGALYZER_REGEN_CORPUS=1 cargo test -p lagalyzer-trace --test corpus
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use lagalyzer_model::prelude::*;
use lagalyzer_trace::faults::Fault;
use lagalyzer_trace::{binary, read_bytes, read_bytes_salvage, text, TraceError};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

/// The deterministic session every binary fixture derives from.
fn base_trace() -> SessionTrace {
    let meta = SessionMeta {
        application: "CorpusApp".into(),
        session: SessionId::from_raw(7),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(300),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
    let paint = b.symbols_mut().method("javax.swing.JFrame", "paint");
    let handle = b.symbols_mut().method("org.app.Main", "handle");
    let mut cursor = 0u64;
    for i in 0..3u32 {
        let start = TimeNs::from_millis(cursor);
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, start).unwrap();
        t.leaf(
            IntervalKind::Listener,
            Some(handle),
            TimeNs::from_millis(cursor + 2),
            TimeNs::from_millis(cursor + 30),
        )
        .unwrap();
        t.leaf(
            IntervalKind::Paint,
            Some(paint),
            TimeNs::from_millis(cursor + 35),
            TimeNs::from_millis(cursor + 70),
        )
        .unwrap();
        t.exit(TimeNs::from_millis(cursor + 80)).unwrap();
        let snap = SampleSnapshot::new(
            TimeNs::from_millis(cursor + 40),
            vec![ThreadSample::new(
                ThreadId::from_raw(0),
                ThreadState::Runnable,
                vec![StackFrame::java(paint)],
            )],
        );
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(i), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .sample(snap)
                .build()
                .unwrap(),
        )
        .unwrap();
        cursor += 100;
    }
    b.push_gc(GcEvent {
        start: TimeNs::from_millis(10),
        end: TimeNs::from_millis(14),
        major: false,
    });
    b.add_short_episodes(42, DurationNs::from_millis(90));
    b.finish()
}

/// The corpus: `(file name, fixture bytes)`, derived deterministically.
fn fixtures() -> Vec<(&'static str, Vec<u8>)> {
    let trace = base_trace();
    let mut bin = Vec::new();
    binary::write(&trace, &mut bin).unwrap();
    let mut txt = Vec::new();
    text::write(&trace, &mut txt).unwrap();

    let mut legacy = Vec::new();
    binary::write_legacy(&trace, &mut legacy).unwrap();
    let mut version_skew = bin.clone();
    version_skew[7] = 3;
    let mut checksum_mismatch = bin.clone();
    let last = checksum_mismatch.len() - 1;
    checksum_mismatch[last] ^= 0xff;
    let mut bitflip = bin.clone();
    bitflip[bin.len() / 2] ^= 0x10;

    let mut truncated_txt = txt[..txt.len() * 2 / 3].to_vec();
    truncated_txt.truncate(truncated_txt.len());
    let garbled_txt = {
        let s = String::from_utf8(txt.clone()).unwrap();
        let mut lines: Vec<String> = s.lines().map(str::to_owned).collect();
        let mid = lines.len() / 2;
        lines[mid] = "en\u{fffd}ter ?? garbled".into();
        lines.join("\n") + "\n"
    };
    let skew_txt = {
        let s = String::from_utf8(txt.clone()).unwrap();
        s.replacen("lagalyzer-trace v1", "lagalyzer-trace v9", 1)
    };

    vec![
        ("clean.lgz", bin.clone()),
        ("legacy-v1.lgz", legacy),
        ("clean.txt", txt.clone()),
        ("truncated.lgz", bin[..bin.len() * 2 / 3].to_vec()),
        ("bitflip.lgz", bitflip),
        ("version-skew.lgz", version_skew),
        ("checksum-mismatch.lgz", checksum_mismatch),
        (
            "deleted-record.lgz",
            Fault::DeleteRecord { index: 5 }.apply(&bin),
        ),
        (
            "duplicated-record.lgz",
            Fault::DuplicateRecord { index: 3 }.apply(&bin),
        ),
        (
            "inflated-length.lgz",
            Fault::InflateLength { index: 0 }.apply(&bin),
        ),
        ("inflated-count.lgz", Fault::InflateCount.apply(&bin)),
        ("truncated.txt", truncated_txt),
        ("garbled-line.txt", garbled_txt.into_bytes()),
        ("version-skew.txt", skew_txt.into_bytes()),
        (
            "garbage.bin",
            b"\x7fELF not a trace at all\x00\x01\x02".to_vec(),
        ),
    ]
}

fn strict_outcome(bytes: &[u8]) -> String {
    match read_bytes(bytes) {
        Ok(trace) => format!("ok(episodes={})", trace.episodes().len()),
        Err(TraceError::Io(_)) => "err(io)".into(),
        Err(TraceError::Corrupt { context, .. }) => format!("err(corrupt:{context})"),
        Err(TraceError::Model(_)) => "err(model)".into(),
        Err(TraceError::UnsupportedVersion { found }) => format!("err(version:{found})"),
        Err(TraceError::ChecksumMismatch { .. }) => "err(checksum)".into(),
        Err(_) => "err(other)".into(),
    }
}

fn salvage_outcome(bytes: &[u8]) -> String {
    match read_bytes_salvage(bytes) {
        Err(_) => "unrecoverable".into(),
        Ok(salvaged) => {
            let r = &salvaged.report;
            let checksum = match r.checksum_ok {
                Some(true) => "ok",
                Some(false) => "bad",
                None => "none",
            };
            format!(
                "{} recovered={} lost={} skips={} bytes_skipped={} lines_skipped={} checksum={}",
                if r.is_clean() { "clean" } else { "damaged" },
                r.episodes_recovered,
                r.episodes_lost,
                r.skips.len(),
                r.bytes_skipped,
                r.lines_skipped,
                checksum,
            )
        }
    }
}

/// The fixture's semantic-check report, exactly as `lagalyzer check
/// --format json` would print it (keyed by fixture name, not path, so
/// the snapshot is machine-independent). Run twice to lock in that the
/// checker is deterministic: a report that varies between runs would
/// make the snapshot flaky, so instability fails here, loudly.
fn check_outcome(name: &str, bytes: &[u8]) -> String {
    let render =
        || match lagalyzer_check::check_bytes(bytes, &mut lagalyzer_check::RuleSet::standard()) {
            Err(_) => "unrecoverable".to_owned(),
            Ok(report) => report.render_json(name),
        };
    let first = render();
    let second = render();
    assert_eq!(first, second, "{name}: check report unstable across runs");
    first
}

fn snapshot_line(name: &str, bytes: &[u8]) -> String {
    format!(
        "{name}: strict={} salvage={}\n{name}: check={}",
        strict_outcome(bytes),
        salvage_outcome(bytes),
        check_outcome(name, bytes),
    )
}

#[test]
fn corpus_outcomes_match_snapshot() {
    let dir = corpus_dir();
    let regen = std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some();
    if regen {
        std::fs::create_dir_all(&dir).unwrap();
        let mut expected = String::new();
        for (name, bytes) in fixtures() {
            std::fs::write(dir.join(name), &bytes).unwrap();
            writeln!(expected, "{}", snapshot_line(name, &bytes)).unwrap();
        }
        std::fs::write(dir.join("EXPECTED.txt"), expected).unwrap();
        return;
    }

    let expected = std::fs::read_to_string(dir.join("EXPECTED.txt"))
        .expect("tests/corpus/EXPECTED.txt missing — run with LAGALYZER_REGEN_CORPUS=1");
    let mut actual = String::new();
    for (name, _) in fixtures() {
        let bytes = std::fs::read(dir.join(name))
            .unwrap_or_else(|e| panic!("corpus fixture {name} unreadable: {e}"));
        writeln!(actual, "{}", snapshot_line(name, &bytes)).unwrap();
    }
    assert_eq!(
        actual, expected,
        "corpus outcomes changed; if intentional, regenerate with \
         LAGALYZER_REGEN_CORPUS=1 and commit the diff"
    );
}

/// The committed fixture bytes themselves are locked too: a format change
/// that alters the encoder must be deliberate.
#[test]
fn corpus_fixtures_match_generator() {
    let dir = corpus_dir();
    if std::env::var_os("LAGALYZER_REGEN_CORPUS").is_some() {
        return; // the snapshot test just rewrote them
    }
    for (name, bytes) in fixtures() {
        let on_disk = std::fs::read(dir.join(name))
            .unwrap_or_else(|e| panic!("corpus fixture {name} unreadable: {e}"));
        assert_eq!(
            on_disk, bytes,
            "fixture {name} no longer matches its generator; if the format \
             change is intentional, regenerate with LAGALYZER_REGEN_CORPUS=1"
        );
    }
}

/// Salvage on the whole corpus never panics and bounds its work — even
/// for the deliberately absurd length/count fields.
#[test]
fn corpus_salvage_never_panics() {
    for (name, bytes) in fixtures() {
        let _ = read_bytes_salvage(&bytes);
        // Also drive the strict path for parity.
        let _ = read_bytes(&bytes);
        // And every prefix of every fixture (cheap: corpus files are small).
        for cut in 0..bytes.len() {
            let _ = read_bytes_salvage(&bytes[..cut]);
        }
        eprintln!("corpus file {name}: ok");
    }
}
