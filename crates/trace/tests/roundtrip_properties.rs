//! Property-based round-trip tests: arbitrary well-formed traces survive
//! both codecs byte-for-byte at the model level.

use lagalyzer_model::prelude::*;
use lagalyzer_trace::{binary, text};
use proptest::prelude::*;

/// Strategy for a small pool of method symbols.
fn symbol_pool() -> Vec<(&'static str, &'static str)> {
    vec![
        ("javax.swing.JFrame", "paint"),
        ("javax.swing.JComboBox", "actionPerformed"),
        ("sun.java2d.loops.DrawLine", "DrawLine"),
        ("org.app.Main", "handle"),
        ("org.app.Model", "recompute"),
    ]
}

#[derive(Clone, Debug)]
struct EpisodeSpec {
    children: Vec<(u8, u8)>, // (kind selector, symbol selector)
    dur_ms: u64,
    samples: Vec<(u64, u8)>, // (offset pct 0..100, state selector)
}

fn episode_spec() -> impl Strategy<Value = EpisodeSpec> {
    (
        proptest::collection::vec((0u8..5, 0u8..6), 0..6),
        4u64..2000,
        proptest::collection::vec((0u64..100, 0u8..4), 0..5),
    )
        .prop_map(|(children, dur_ms, samples)| EpisodeSpec {
            children,
            dur_ms,
            samples,
        })
}

fn kind_for(sel: u8) -> IntervalKind {
    match sel {
        0 => IntervalKind::Listener,
        1 => IntervalKind::Paint,
        2 => IntervalKind::Native,
        3 => IntervalKind::Async,
        _ => IntervalKind::Gc,
    }
}

fn state_for(sel: u8) -> ThreadState {
    ThreadState::ALL[sel as usize % 4]
}

fn build_trace(specs: &[EpisodeSpec], short: u64) -> SessionTrace {
    let meta = SessionMeta {
        application: "PropApp".into(),
        session: SessionId::from_raw(0),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(3600),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
    let pool: Vec<MethodRef> = symbol_pool()
        .into_iter()
        .map(|(c, m)| b.symbols_mut().method(c, m))
        .collect();

    let mut cursor = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let start = cursor;
        let end = start + spec.dur_ms;
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, TimeNs::from_millis(start))
            .unwrap();
        // Lay children side by side inside the dispatch window.
        let n = spec.children.len() as u64;
        if n > 0 {
            let slot = spec.dur_ms / (n + 1);
            for (j, (ksel, ssel)) in spec.children.iter().enumerate() {
                let s = start + slot * (j as u64) + 1;
                let e = (s + slot.saturating_sub(2)).min(end);
                if e <= s {
                    continue;
                }
                let kind = kind_for(*ksel);
                let symbol = if kind == IntervalKind::Gc || *ssel as usize >= pool.len() {
                    None
                } else {
                    Some(pool[*ssel as usize])
                };
                t.leaf(kind, symbol, TimeNs::from_millis(s), TimeNs::from_millis(e))
                    .unwrap();
            }
        }
        t.exit(TimeNs::from_millis(end)).unwrap();
        let mut eb = EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
            .tree(t.finish().unwrap());
        for (pct, ssel) in &spec.samples {
            let at = start + spec.dur_ms * pct / 100;
            eb = eb.sample(SampleSnapshot::new(
                TimeNs::from_millis(at),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    state_for(*ssel),
                    vec![StackFrame::java(pool[*ssel as usize % pool.len()])],
                )],
            ));
        }
        b.push_episode(eb.build().unwrap()).unwrap();
        cursor = end + 10;
    }
    b.add_short_episodes(short, DurationNs::from_micros(short * 300));
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary round trip preserves the full model.
    #[test]
    fn binary_round_trip(specs in proptest::collection::vec(episode_spec(), 0..10),
                         short in 0u64..1_000_000) {
        let trace = build_trace(&specs, short);
        let mut buf = Vec::new();
        binary::write(&trace, &mut buf).unwrap();
        let back = binary::read(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.meta(), trace.meta());
        prop_assert_eq!(back.episodes(), trace.episodes());
        prop_assert_eq!(back.short_episode_count(), trace.short_episode_count());
        prop_assert_eq!(back.short_episode_time(), trace.short_episode_time());
    }

    /// Text round trip preserves the full model.
    #[test]
    fn text_round_trip(specs in proptest::collection::vec(episode_spec(), 0..10),
                       short in 0u64..1_000_000) {
        let trace = build_trace(&specs, short);
        let mut buf = Vec::new();
        text::write(&trace, &mut buf).unwrap();
        let back = text::read(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.meta(), trace.meta());
        prop_assert_eq!(back.episodes(), trace.episodes());
        prop_assert_eq!(back.short_episode_count(), trace.short_episode_count());
        prop_assert_eq!(back.short_episode_time(), trace.short_episode_time());
    }

    /// Binary encoding is deterministic: same trace, same bytes.
    #[test]
    fn binary_encoding_deterministic(specs in proptest::collection::vec(episode_spec(), 0..6)) {
        let trace = build_trace(&specs, 3);
        let mut a = Vec::new();
        let mut b = Vec::new();
        binary::write(&trace, &mut a).unwrap();
        binary::write(&trace, &mut b).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Random garbage never panics the binary reader (it errors instead).
    #[test]
    fn binary_reader_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = binary::read(&mut bytes.as_slice());
    }

    /// Random text never panics the text reader.
    #[test]
    fn text_reader_survives_garbage(s in "\\PC{0,300}") {
        let _ = text::read(s.as_bytes());
    }
}
