//! Error-path coverage for the episode streams: how the strict
//! [`EpisodeStream`] fails on damage, and how [`SalvageEpisodeStream`]
//! recovers from the same damage.

use lagalyzer_model::prelude::*;
use lagalyzer_trace::faults::Fault;
use lagalyzer_trace::{binary, EpisodeStream, SalvageEpisodeStream, TraceError};

fn ms(v: u64) -> TimeNs {
    TimeNs::from_millis(v)
}

/// A trace with `episodes` episodes, one interned method, one sample per
/// episode.
fn sample_trace(episodes: usize) -> SessionTrace {
    let meta = SessionMeta {
        application: "StreamErr".into(),
        session: SessionId::from_raw(1),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: DurationNs::from_secs(60),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
    let m = b.symbols_mut().method("app.Main", "handle");
    let mut cursor = 0u64;
    for i in 0..episodes {
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(cursor)).unwrap();
        t.leaf(
            IntervalKind::Listener,
            Some(m),
            ms(cursor + 1),
            ms(cursor + 40),
        )
        .unwrap();
        t.exit(ms(cursor + 50)).unwrap();
        let snap = SampleSnapshot::new(
            ms(cursor + 20),
            vec![ThreadSample::new(
                ThreadId::from_raw(0),
                ThreadState::Runnable,
                vec![StackFrame::java(m)],
            )],
        );
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(i as u32), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .sample(snap)
                .build()
                .unwrap(),
        )
        .unwrap();
        cursor += 100;
    }
    b.finish()
}

fn encode(trace: &SessionTrace) -> Vec<u8> {
    let mut bytes = Vec::new();
    binary::write(trace, &mut bytes).unwrap();
    bytes
}

/// Byte length of the encoding prefix that covers episodes `0..n` (found
/// by encoding a trace with only those episodes and discounting the
/// trailer), so tests can cut precisely mid-episode.
fn cut_inside_episode(trace: &SessionTrace, full: &[u8], episode: usize) -> usize {
    let mut b = SessionTraceBuilder::new(trace.meta().clone(), trace.symbols().clone());
    for e in &trace.episodes()[..episode] {
        b.push_episode(e.clone()).unwrap();
    }
    // A legacy (footerless) encoding is header + records + trailer, and its
    // header/records bytes are identical to the v2 prefix, so its length
    // minus the trailer is the offset where the next episode begins.
    let mut prefix = Vec::new();
    binary::write_legacy(&b.finish(), &mut prefix).unwrap();
    // Step into the next episode far enough that the salvager's 8-byte
    // trailer heuristic (the last 8 bytes of a truncated file are presumed
    // to be the trailer) stays inside the episode being cut.
    (prefix.len() - 8 + 12).min(full.len() - 1)
}

#[test]
fn strict_stream_errors_on_mid_episode_truncation() {
    let trace = sample_trace(3);
    let bytes = encode(&trace);
    let cut = cut_inside_episode(&trace, &bytes, 2);
    let mut stream = EpisodeStream::new(&bytes[..cut]).unwrap();
    let mut yielded = 0;
    let err = loop {
        match stream.next_episode() {
            Ok(Some(_)) => yielded += 1,
            Ok(None) => panic!("truncated stream decoded cleanly"),
            Err(e) => break e,
        }
    };
    assert!(yielded < 3, "yielded all episodes despite truncation");
    assert!(
        matches!(err, TraceError::Io(_) | TraceError::Corrupt { .. }),
        "unexpected error: {err:?}"
    );
}

#[test]
fn salvage_stream_recovers_prefix_on_mid_episode_truncation() {
    let trace = sample_trace(3);
    let bytes = encode(&trace);
    let cut = cut_inside_episode(&trace, &bytes, 2);
    let mut stream = SalvageEpisodeStream::new(&bytes[..cut]).unwrap();
    let mut recovered = Vec::new();
    while let Some(episode) = stream.next_episode() {
        recovered.push(episode);
    }
    // Exactly the episodes fully before the cut, byte-identical.
    assert_eq!(recovered.as_slice(), &trace.episodes()[..2]);
    let (_tail, report) = stream.finish();
    assert!(!report.is_clean());
    assert_eq!(report.episodes_recovered, 2);
    assert!(report.episodes_lost >= 1, "the cut episode must be counted");
    // The cut file still ends with 8 bytes the cursor must presume to be
    // the trailer; they are record bytes, so the checksum cannot match.
    assert_eq!(report.checksum_ok, Some(false));
}

#[test]
fn strict_stream_errors_on_corrupt_symbol_table_before_first_episode() {
    let trace = sample_trace(2);
    let bytes = encode(&trace);
    // Record 0 is a symbol record; inflating its length prefix corrupts
    // the symbol table before any episode is reachable.
    let damaged = Fault::InflateLength { index: 0 }.apply(&bytes);
    assert_ne!(damaged, bytes);
    let mut stream = EpisodeStream::new(damaged.as_slice()).unwrap();
    let first = stream.next_episode();
    assert!(
        first.is_err(),
        "strict stream must fail before the first episode, got {first:?}"
    );
}

#[test]
fn salvage_stream_survives_corrupt_symbol_table() {
    let trace = sample_trace(2);
    let bytes = encode(&trace);
    let damaged = Fault::InflateLength { index: 0 }.apply(&bytes);
    let mut stream = SalvageEpisodeStream::new(&damaged).unwrap();
    let mut recovered = Vec::new();
    while let Some(episode) = stream.next_episode() {
        recovered.push(episode);
    }
    // Episode structure survives (symbol ids are raw in the episodes);
    // the lost names become placeholders.
    assert_eq!(recovered.as_slice(), trace.episodes());
    let symbols = stream.symbols();
    assert_eq!(symbols.len(), trace.symbols().len());
    assert!(
        symbols
            .iter()
            .any(|(_, name)| name.contains("<lost-symbol-")),
        "lost definitions must appear as placeholders"
    );
    let (_tail, report) = stream.finish();
    assert!(!report.is_clean());
    assert!(report.bytes_skipped > 0);
}

#[test]
fn salvage_stream_iterator_matches_next_episode() {
    let trace = sample_trace(4);
    let bytes = encode(&trace);
    let stream = SalvageEpisodeStream::new(&bytes).unwrap();
    let collected: Vec<Episode> = stream.collect();
    assert_eq!(collected.as_slice(), trace.episodes());
}
