//! Rendering for LagAlyzer: episode sketches and characterization charts.
//!
//! The paper's tool draws episode sketches in a Swing GUI and produces its
//! study charts with MATLAB. This crate substitutes static rendering for
//! both: a dependency-free [`svg`] document builder, the [`sketch`] module
//! reproducing Fig 1/Fig 2-style episode sketches (time axis, nested
//! interval bars colored by type, stack-sample dots colored by thread
//! state along the top edge, hover tooltips with full stacks), an
//! [`ascii`] fallback for terminals, a [`timeline`] view of whole sessions
//! (the LiLa Viewer lineage), and [`charts`] for the study figures
//! (stacked bars for Figs 4/5/6/8, multi-series CDF lines for Fig 3, dot
//! plots for Fig 7).
//!
//! # Example
//!
//! ```
//! use lagalyzer_sim::scenarios;
//! use lagalyzer_viz::sketch::{render_sketch, SketchOptions};
//!
//! let scenario = scenarios::figure1();
//! let svg = render_sketch(&scenario.episode, &scenario.symbols, &SketchOptions::default());
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("DrawLine"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod charts;
pub mod color;
pub mod scale;
pub mod sketch;
pub mod svg;
pub mod timeline;

pub use ascii::ascii_sketch;
pub use sketch::{render_sketch, SketchOptions};
pub use timeline::{render_timeline, TimelineOptions};
