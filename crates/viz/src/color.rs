//! Color assignments: one color per interval type (as in the paper's
//! episode sketches) and per thread state (sample dots).

use lagalyzer_model::{IntervalKind, ThreadState};

/// The fill color of an interval bar.
pub fn interval_color(kind: IntervalKind) -> &'static str {
    match kind {
        IntervalKind::Dispatch => "#b0b0b0",
        IntervalKind::Listener => "#4c78a8",
        IntervalKind::Paint => "#59a14f",
        IntervalKind::Native => "#e9912d",
        IntervalKind::Async => "#b07aa1",
        IntervalKind::Gc => "#e15759",
    }
}

/// The fill color of a sample dot.
pub fn state_color(state: ThreadState) -> &'static str {
    match state {
        ThreadState::Runnable => "#2ca02c",
        ThreadState::Blocked => "#d62728",
        ThreadState::Waiting => "#ff7f0e",
        ThreadState::Sleeping => "#9467bd",
    }
}

/// A categorical series palette for multi-line charts (Fig 3 has 14
/// series); wraps around when more series are requested.
pub fn series_color(index: usize) -> &'static str {
    const PALETTE: [&str; 14] = [
        "#4c78a8", "#f58518", "#e45756", "#72b7b2", "#54a24b", "#eeca3b", "#b279a2", "#ff9da6",
        "#9d755d", "#bab0ac", "#2f4b7c", "#665191", "#a05195", "#d45087",
    ];
    PALETTE[index % PALETTE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_colors_are_distinct() {
        let colors: std::collections::HashSet<&str> = IntervalKind::ALL
            .iter()
            .map(|k| interval_color(*k))
            .collect();
        assert_eq!(colors.len(), IntervalKind::ALL.len());
    }

    #[test]
    fn state_colors_are_distinct() {
        let colors: std::collections::HashSet<&str> =
            ThreadState::ALL.iter().map(|s| state_color(*s)).collect();
        assert_eq!(colors.len(), ThreadState::ALL.len());
    }

    #[test]
    fn series_palette_wraps() {
        assert_eq!(series_color(0), series_color(14));
        assert_ne!(series_color(0), series_color(1));
    }

    #[test]
    fn colors_are_hex() {
        for k in IntervalKind::ALL {
            assert!(interval_color(k).starts_with('#'));
        }
        for s in ThreadState::ALL {
            assert!(state_color(s).starts_with('#'));
        }
    }
}
