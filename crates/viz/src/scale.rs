//! Linear coordinate scales.

use lagalyzer_model::TimeNs;

/// Maps a time domain onto a pixel range.
#[derive(Clone, Copy, Debug)]
pub struct TimeScale {
    t0: u64,
    t1: u64,
    x0: f64,
    x1: f64,
}

impl TimeScale {
    /// Creates a scale mapping `[start, end]` onto `[x0, x1]`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: TimeNs, end: TimeNs, x0: f64, x1: f64) -> Self {
        assert!(end >= start, "inverted time domain");
        TimeScale {
            t0: start.as_nanos(),
            t1: end.as_nanos().max(start.as_nanos() + 1),
            x0,
            x1,
        }
    }

    /// The pixel position of instant `t` (clamped to the domain).
    pub fn x(&self, t: TimeNs) -> f64 {
        let t = t.as_nanos().clamp(self.t0, self.t1);
        let f = (t - self.t0) as f64 / (self.t1 - self.t0) as f64;
        self.x0 + f * (self.x1 - self.x0)
    }

    /// Evenly spaced tick instants across the domain.
    pub fn ticks(&self, n: usize) -> Vec<TimeNs> {
        (0..=n)
            .map(|i| TimeNs::from_nanos(self.t0 + (self.t1 - self.t0) * i as u64 / n as u64))
            .collect()
    }
}

/// Maps a unit domain `[0, 1]` onto a pixel range.
#[derive(Clone, Copy, Debug)]
pub struct UnitScale {
    x0: f64,
    x1: f64,
}

impl UnitScale {
    /// Creates a scale onto `[x0, x1]`.
    pub fn new(x0: f64, x1: f64) -> Self {
        UnitScale { x0, x1 }
    }

    /// The pixel position of fraction `f` (clamped to `[0, 1]`).
    pub fn x(&self, f: f64) -> f64 {
        self.x0 + f.clamp(0.0, 1.0) * (self.x1 - self.x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_scale_maps_endpoints() {
        let s = TimeScale::new(
            TimeNs::from_millis(100),
            TimeNs::from_millis(200),
            10.0,
            110.0,
        );
        assert!((s.x(TimeNs::from_millis(100)) - 10.0).abs() < 1e-9);
        assert!((s.x(TimeNs::from_millis(200)) - 110.0).abs() < 1e-9);
        assert!((s.x(TimeNs::from_millis(150)) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn time_scale_clamps() {
        let s = TimeScale::new(
            TimeNs::from_millis(100),
            TimeNs::from_millis(200),
            0.0,
            100.0,
        );
        assert_eq!(s.x(TimeNs::from_millis(50)), 0.0);
        assert_eq!(s.x(TimeNs::from_millis(900)), 100.0);
    }

    #[test]
    fn degenerate_domain_does_not_divide_by_zero() {
        let s = TimeScale::new(TimeNs::from_millis(5), TimeNs::from_millis(5), 0.0, 10.0);
        let x = s.x(TimeNs::from_millis(5));
        assert!(x.is_finite());
    }

    #[test]
    fn ticks_cover_domain() {
        let s = TimeScale::new(TimeNs::ZERO, TimeNs::from_millis(100), 0.0, 1.0);
        let ticks = s.ticks(4);
        assert_eq!(ticks.len(), 5);
        assert_eq!(ticks[0], TimeNs::ZERO);
        assert_eq!(ticks[4], TimeNs::from_millis(100));
    }

    #[test]
    fn unit_scale() {
        let s = UnitScale::new(100.0, 200.0);
        assert!((s.x(0.0) - 100.0).abs() < 1e-9);
        assert!((s.x(0.5) - 150.0).abs() < 1e-9);
        assert!((s.x(2.0) - 200.0).abs() < 1e-9, "clamped");
    }
}
