//! Study charts: the figure styles used in the paper's evaluation.
//!
//! * [`StackedBarChart`] — horizontal 100% stacked bars, one per
//!   application (Figs 4, 5, 6, 8);
//! * [`MultiLineChart`] — multi-series line chart on unit axes (Fig 3's
//!   cumulative distribution of episodes into patterns);
//! * [`DotChart`] — one dot per application on a numeric axis (Fig 7's
//!   average runnable threads).

use crate::color::series_color;
use crate::scale::UnitScale;
use crate::svg::SvgDoc;

const LABEL_W: f64 = 120.0;
const LEGEND_H: f64 = 22.0;

/// A horizontal 100% stacked bar chart.
#[derive(Clone, Debug)]
pub struct StackedBarChart {
    title: String,
    segment_labels: Vec<String>,
    segment_colors: Vec<&'static str>,
    rows: Vec<(String, Vec<f64>)>,
    x_max: f64,
}

impl StackedBarChart {
    /// Creates a chart with the given title and segment (stack component)
    /// labels; a color is assigned per segment.
    pub fn new<S: Into<String>>(title: S, segment_labels: &[&str]) -> Self {
        StackedBarChart {
            title: title.into(),
            segment_labels: segment_labels.iter().map(|s| (*s).to_owned()).collect(),
            segment_colors: (0..segment_labels.len()).map(series_color).collect(),
            rows: Vec::new(),
            x_max: 1.0,
        }
    }

    /// Zooms the x-axis to `[0, max]` (the paper zooms Fig 8 to 60%).
    pub fn x_max(&mut self, max: f64) -> &mut Self {
        self.x_max = max.max(1e-9);
        self
    }

    /// Adds one bar. `values` must have one entry per segment; they are
    /// fractions in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong arity.
    pub fn row<S: Into<String>>(&mut self, label: S, values: &[f64]) -> &mut Self {
        assert_eq!(
            values.len(),
            self.segment_labels.len(),
            "row arity must match segment count"
        );
        self.rows.push((label.into(), values.to_vec()));
        self
    }

    /// Renders the chart to SVG.
    pub fn render(&self) -> String {
        let bar_h = 18.0;
        let width = 760.0;
        let height = 40.0 + LEGEND_H + self.rows.len() as f64 * (bar_h + 4.0) + 30.0;
        let mut doc = SvgDoc::new(width, height);
        doc.text(10.0, 18.0, 13.0, &self.title);

        // Legend.
        let mut lx = 10.0;
        for (label, color) in self.segment_labels.iter().zip(&self.segment_colors) {
            doc.rect(lx, 26.0, 10.0, 10.0, color, None);
            doc.text(lx + 14.0, 35.0, 10.0, label);
            lx += 14.0 + 7.0 * label.len() as f64 + 20.0;
        }

        let scale = UnitScale::new(LABEL_W, width - 20.0);
        let top = 30.0 + LEGEND_H;
        for (i, (label, values)) in self.rows.iter().enumerate() {
            let y = top + i as f64 * (bar_h + 4.0);
            doc.text_anchored(LABEL_W - 6.0, y + bar_h - 5.0, 10.0, "end", label);
            let mut cum = 0.0;
            for (v, color) in values.iter().zip(&self.segment_colors) {
                let x0 = scale.x(cum / self.x_max);
                cum += v;
                let x1 = scale.x(cum / self.x_max);
                if x1 > x0 {
                    doc.rect(
                        x0,
                        y,
                        x1 - x0,
                        bar_h,
                        color,
                        Some(&format!("{label}: {:.1}%", v * 100.0)),
                    );
                }
            }
        }

        // Percent axis.
        let axis_y = top + self.rows.len() as f64 * (bar_h + 4.0) + 8.0;
        doc.line(LABEL_W, axis_y, width - 20.0, axis_y, "#333333");
        for i in 0..=4 {
            let f = i as f64 / 4.0;
            let x = scale.x(f);
            doc.line(x, axis_y, x, axis_y + 4.0, "#333333");
            doc.text_anchored(
                x,
                axis_y + 15.0,
                9.0,
                "middle",
                &format!("{:.0}", f * self.x_max * 100.0),
            );
        }
        doc.finish()
    }
}

/// A multi-series line chart over unit axes (percent vs percent).
#[derive(Clone, Debug)]
pub struct MultiLineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl MultiLineChart {
    /// Creates an empty chart.
    pub fn new<S: Into<String>>(title: S, x_label: S, y_label: S) -> Self {
        MultiLineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a named series of `(x, y)` points in `[0, 1]²`.
    pub fn series<S: Into<String>>(&mut self, name: S, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    /// Renders the chart to SVG.
    pub fn render(&self) -> String {
        let (width, height) = (640.0, 420.0);
        let (left, right, top, bottom) = (60.0, 170.0, 40.0, 50.0);
        let xs = UnitScale::new(left, width - right);
        let ys = UnitScale::new(height - bottom, top); // y grows upward
        let mut doc = SvgDoc::new(width, height);
        doc.text(10.0, 20.0, 13.0, &self.title);

        // Axes with percent ticks.
        doc.line(
            left,
            height - bottom,
            width - right,
            height - bottom,
            "#333",
        );
        doc.line(left, top, left, height - bottom, "#333");
        for i in 0..=5 {
            let f = i as f64 / 5.0;
            doc.text_anchored(
                xs.x(f),
                height - bottom + 16.0,
                9.0,
                "middle",
                &format!("{:.0}", f * 100.0),
            );
            doc.text_anchored(
                left - 6.0,
                ys.x(f) + 3.0,
                9.0,
                "end",
                &format!("{:.0}", f * 100.0),
            );
            doc.line(
                xs.x(f),
                height - bottom,
                xs.x(f),
                height - bottom + 4.0,
                "#333",
            );
            doc.line(left - 4.0, ys.x(f), left, ys.x(f), "#333");
        }
        doc.text_anchored(
            (left + width - right) / 2.0,
            height - 12.0,
            11.0,
            "middle",
            &self.x_label,
        );
        doc.text(8.0, top - 8.0, 11.0, &self.y_label);

        // Series lines + legend.
        for (i, (name, points)) in self.series.iter().enumerate() {
            let color = series_color(i);
            let pixel_points: Vec<(f64, f64)> =
                points.iter().map(|&(x, y)| (xs.x(x), ys.x(y))).collect();
            doc.polyline(&pixel_points, color);
            let ly = top + i as f64 * 16.0;
            doc.line(width - right + 10.0, ly, width - right + 30.0, ly, color);
            doc.text(width - right + 35.0, ly + 3.0, 9.0, name);
        }
        doc.finish()
    }
}

/// A dot chart: one labeled row per item, a dot at a numeric value.
#[derive(Clone, Debug)]
pub struct DotChart {
    title: String,
    x_label: String,
    max: f64,
    rows: Vec<(String, f64)>,
    /// A reference line (Fig 7 cares about the value 1.0).
    reference: Option<f64>,
}

impl DotChart {
    /// Creates a chart with a given x-axis maximum.
    pub fn new<S: Into<String>>(title: S, x_label: S, max: f64) -> Self {
        DotChart {
            title: title.into(),
            x_label: x_label.into(),
            max: max.max(1e-9),
            rows: Vec::new(),
            reference: None,
        }
    }

    /// Draws a vertical reference line at `value`.
    pub fn reference(&mut self, value: f64) -> &mut Self {
        self.reference = Some(value);
        self
    }

    /// Adds one row.
    pub fn row<S: Into<String>>(&mut self, label: S, value: f64) -> &mut Self {
        self.rows.push((label.into(), value));
        self
    }

    /// Renders the chart to SVG.
    pub fn render(&self) -> String {
        let row_h = 20.0;
        let width = 640.0;
        let height = 60.0 + self.rows.len() as f64 * row_h + 30.0;
        let mut doc = SvgDoc::new(width, height);
        doc.text(10.0, 18.0, 13.0, &self.title);
        let scale = UnitScale::new(LABEL_W, width - 30.0);
        let top = 36.0;
        if let Some(r) = self.reference {
            let x = scale.x(r / self.max);
            doc.line(
                x,
                top - 6.0,
                x,
                top + self.rows.len() as f64 * row_h,
                "#999999",
            );
        }
        for (i, (label, value)) in self.rows.iter().enumerate() {
            let y = top + i as f64 * row_h + row_h / 2.0;
            doc.text_anchored(LABEL_W - 6.0, y + 3.0, 10.0, "end", label);
            doc.line(LABEL_W, y, width - 30.0, y, "#eeeeee");
            doc.circle(
                scale.x(value / self.max),
                y,
                4.0,
                series_color(0),
                Some(&format!("{label}: {value:.2}")),
            );
        }
        let axis_y = top + self.rows.len() as f64 * row_h + 10.0;
        doc.line(LABEL_W, axis_y, width - 30.0, axis_y, "#333333");
        for i in 0..=4 {
            let f = i as f64 / 4.0;
            let x = scale.x(f);
            doc.line(x, axis_y, x, axis_y + 4.0, "#333333");
            doc.text_anchored(
                x,
                axis_y + 15.0,
                9.0,
                "middle",
                &format!("{:.2}", f * self.max),
            );
        }
        doc.text_anchored(
            (LABEL_W + width - 30.0) / 2.0,
            height - 4.0,
            10.0,
            "middle",
            &self.x_label,
        );
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stacked_bar_renders_rows_and_legend() {
        let mut chart = StackedBarChart::new("Triggers", &["input", "output", "async", "unspec"]);
        chart.row("JMol", &[0.01, 0.98, 0.005, 0.005]);
        chart.row("ArgoUML", &[0.78, 0.16, 0.03, 0.03]);
        let svg = chart.render();
        assert!(svg.contains("Triggers"));
        assert!(svg.contains("JMol"));
        assert!(svg.contains("ArgoUML"));
        assert!(svg.contains("input"));
        assert!(svg.contains("98.0%"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn stacked_bar_rejects_wrong_arity() {
        let mut chart = StackedBarChart::new("X", &["a", "b"]);
        chart.row("bad", &[0.5]);
    }

    #[test]
    fn stacked_bar_zoom_changes_axis_labels() {
        let mut chart = StackedBarChart::new("Zoomed", &["a"]);
        chart.x_max(0.6);
        chart.row("app", &[0.3]);
        let svg = chart.render();
        assert!(svg.contains(">60<"), "zoomed axis should end at 60%");
    }

    #[test]
    fn multi_line_renders_series() {
        let mut chart = MultiLineChart::new("CDF", "patterns [%]", "episodes [%]");
        chart.series("app1", vec![(0.2, 0.8), (1.0, 1.0)]);
        chart.series("app2", vec![(0.5, 0.5), (1.0, 1.0)]);
        let svg = chart.render();
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("app1"));
        assert!(svg.contains("patterns"));
    }

    #[test]
    fn dot_chart_renders_reference_line() {
        let mut chart = DotChart::new("Concurrency", "runnable threads", 2.0);
        chart.reference(1.0);
        chart.row("FindBugs", 1.4);
        chart.row("Euclide", 0.4);
        let svg = chart.render();
        assert!(svg.contains("FindBugs"));
        assert!(svg.contains("FindBugs: 1.40"));
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn empty_charts_render_without_panic() {
        assert!(StackedBarChart::new("E", &["a"]).render().contains("<svg"));
        assert!(MultiLineChart::new("E", "x", "y").render().contains("<svg"));
        assert!(DotChart::new("E", "x", 1.0).render().contains("<svg"));
    }
}
