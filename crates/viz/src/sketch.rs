//! Episode sketches (the paper's Fig 1 / Fig 2).
//!
//! A sketch has three parts, bottom to top:
//!
//! 1. a **time axis** with tick labels in session time;
//! 2. the **interval tree**, one row per depth with the dispatch interval
//!    at the bottom, each interval a bar colored by type and carrying a
//!    tooltip (`Kind Class.method (duration)`);
//! 3. the GUI thread's **stack samples** as dots along the top edge,
//!    colored by thread state, each with the full stack trace as tooltip.

use lagalyzer_model::{Episode, SymbolTable, ThreadSample};

use crate::color::{interval_color, state_color};
use crate::scale::TimeScale;
use crate::svg::SvgDoc;

/// Rendering options for [`render_sketch`].
#[derive(Clone, Debug)]
pub struct SketchOptions {
    /// Total image width in pixels.
    pub width: f64,
    /// Height of one interval row.
    pub row_height: f64,
    /// Radius of a sample dot.
    pub dot_radius: f64,
    /// Maximum stack frames included in a dot tooltip.
    pub tooltip_frames: usize,
}

impl Default for SketchOptions {
    fn default() -> Self {
        SketchOptions {
            width: 900.0,
            row_height: 18.0,
            dot_radius: 3.0,
            tooltip_frames: 8,
        }
    }
}

/// Renders one episode as an SVG episode sketch.
pub fn render_sketch(episode: &Episode, symbols: &SymbolTable, opts: &SketchOptions) -> String {
    use lagalyzer_model::{IntervalKind, ThreadState};

    let tree = episode.tree();
    let depth_rows = tree.max_depth() + 1;
    let margin = 40.0;
    let samples_band = 16.0;
    let axis_band = 28.0;
    let legend_band = 18.0;
    let tree_band = depth_rows as f64 * opts.row_height;
    let height = samples_band + tree_band + axis_band + legend_band + 24.0;
    let mut doc = SvgDoc::new(opts.width, height);
    let scale = TimeScale::new(episode.start(), episode.end(), margin, opts.width - 15.0);

    // --- interval tree: depth 0 (dispatch) at the bottom ------------------
    let tree_top = samples_band + 10.0;
    for (id, node) in tree.iter() {
        let interval = tree.interval(id);
        let x0 = scale.x(interval.start);
        let x1 = scale.x(interval.end);
        // Deeper intervals sit higher; the dispatch row is at the bottom.
        let row = depth_rows - 1 - node.depth;
        let y = tree_top + row as f64 * opts.row_height;
        let label = match interval.symbol {
            Some(sym) => format!(
                "{} {} ({})",
                interval.kind.name(),
                symbols.render(sym),
                interval.duration()
            ),
            None => format!("{} ({})", interval.kind.name(), interval.duration()),
        };
        doc.rect(
            x0,
            y,
            (x1 - x0).max(1.0),
            opts.row_height - 2.0,
            interval_color(interval.kind),
            Some(&label),
        );
    }

    // --- sample dots along the top edge -----------------------------------
    let gui = episode.thread();
    for snap in episode.samples() {
        let Some(ts) = snap.thread(gui) else { continue };
        doc.circle(
            scale.x(snap.time),
            samples_band / 2.0,
            opts.dot_radius,
            state_color(ts.state),
            Some(&sample_tooltip(ts, symbols, opts.tooltip_frames)),
        );
    }

    // --- time axis ---------------------------------------------------------
    let axis_y = tree_top + tree_band + 6.0;
    doc.line(margin, axis_y, opts.width - 15.0, axis_y, "#333333");
    for tick in scale.ticks(8) {
        let x = scale.x(tick);
        doc.line(x, axis_y, x, axis_y + 4.0, "#333333");
        doc.text_anchored(x, axis_y + 16.0, 9.0, "middle", &tick.to_string());
    }

    // --- legend: interval kinds present in this episode + thread states ---
    let legend_y = axis_y + 24.0;
    let mut lx = margin;
    for kind in IntervalKind::ALL {
        if !tree.contains_kind(kind) {
            continue;
        }
        doc.rect(lx, legend_y, 9.0, 9.0, interval_color(kind), None);
        doc.text(lx + 12.0, legend_y + 8.0, 9.0, kind.name());
        lx += 12.0 + 6.5 * kind.name().len() as f64 + 12.0;
    }
    if !episode.samples().is_empty() {
        for state in ThreadState::ALL {
            doc.circle(lx + 4.0, legend_y + 4.5, 3.0, state_color(state), None);
            doc.text(lx + 11.0, legend_y + 8.0, 9.0, state.name());
            lx += 11.0 + 6.5 * state.name().len() as f64 + 12.0;
        }
    }
    doc.finish()
}

/// Builds the hover text for one sample dot: state plus the stack trace.
fn sample_tooltip(ts: &ThreadSample, symbols: &SymbolTable, max_frames: usize) -> String {
    let mut out = format!("{} [{}]", ts.thread, ts.state);
    for frame in ts.stack.iter().take(max_frames) {
        out.push('\n');
        out.push_str("  at ");
        out.push_str(&symbols.render(frame.method));
        if frame.native {
            out.push_str(" (native)");
        }
    }
    if ts.stack.len() > max_frames {
        out.push_str(&format!("\n  … {} more", ts.stack.len() - max_frames));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn sketch_fixture() -> (Episode, SymbolTable) {
        let mut symbols = SymbolTable::new();
        let paint = symbols.method("javax.swing.JFrame", "paint");
        let native = symbols.method("sun.java2d.loops.DrawLine", "DrawLine");
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        b.enter(IntervalKind::Paint, Some(paint), ms(10)).unwrap();
        b.leaf(IntervalKind::Native, Some(native), ms(100), ms(800))
            .unwrap();
        b.exit(ms(1500)).unwrap();
        b.exit(ms(1705)).unwrap();
        let episode = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(b.finish().unwrap())
            .sample(SampleSnapshot::new(
                ms(50),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Runnable,
                    vec![StackFrame::java(paint)],
                )],
            ))
            .sample(SampleSnapshot::new(
                ms(900),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Sleeping,
                    vec![StackFrame::native(native), StackFrame::java(paint)],
                )],
            ))
            .build()
            .unwrap();
        (episode, symbols)
    }

    #[test]
    fn sketch_contains_all_parts() {
        let (episode, symbols) = sketch_fixture();
        let svg = render_sketch(&episode, &symbols, &SketchOptions::default());
        assert!(svg.starts_with("<svg"));
        // One rect per interval (3), the background, and the legend
        // swatches for the three kinds present.
        assert_eq!(svg.matches("<rect").count(), 7);
        // One dot per sample plus the four state legend dots.
        assert_eq!(svg.matches("<circle").count(), 6);
        // Legend names the kinds present.
        assert!(svg.contains(">Native<"));
        // Interval tooltips name the methods and durations.
        assert!(svg.contains("javax.swing.JFrame.paint"));
        assert!(svg.contains("DrawLine"));
        assert!(svg.contains("1.71s") || svg.contains("1705"));
        // Axis ticks rendered.
        assert!(svg.matches("<line").count() >= 9);
    }

    #[test]
    fn sample_dots_colored_by_state() {
        let (episode, symbols) = sketch_fixture();
        let svg = render_sketch(&episode, &symbols, &SketchOptions::default());
        assert!(svg.contains(crate::color::state_color(ThreadState::Runnable)));
        assert!(svg.contains(crate::color::state_color(ThreadState::Sleeping)));
    }

    #[test]
    fn tooltip_includes_stack_and_native_marker() {
        let (episode, symbols) = sketch_fixture();
        let ts = episode.samples()[1].threads[0].clone();
        let tip = sample_tooltip(&ts, &symbols, 8);
        assert!(tip.contains("sleeping"));
        assert!(tip.contains("at sun.java2d.loops.DrawLine.DrawLine (native)"));
        assert!(tip.contains("at javax.swing.JFrame.paint"));
    }

    #[test]
    fn tooltip_truncates_deep_stacks() {
        let mut symbols = SymbolTable::new();
        let m = symbols.method("a.B", "c");
        let ts = ThreadSample::new(
            ThreadId::from_raw(0),
            ThreadState::Runnable,
            vec![StackFrame::java(m); 12],
        );
        let tip = sample_tooltip(&ts, &symbols, 3);
        assert!(tip.contains("… 9 more"));
    }

    #[test]
    fn figure_scenarios_render() {
        for scenario in [
            lagalyzer_sim::scenarios::figure1(),
            lagalyzer_sim::scenarios::figure2(),
        ] {
            let svg = render_sketch(
                &scenario.episode,
                &scenario.symbols,
                &SketchOptions::default(),
            );
            assert!(svg.len() > 500, "{} rendered too little", scenario.title);
        }
    }
}

/// Renders a pattern's episodes as a vertical gallery of mini-sketches —
/// the paper's §II-E browsing flow ("browse through the sketches of all
/// episodes in the pattern to get a quick grasp of the timing variations
/// between episodes"). Episodes share one duration scale so their timing
/// variation is visible at a glance.
pub fn render_pattern_gallery(
    episodes: &[&Episode],
    symbols: &SymbolTable,
    opts: &SketchOptions,
) -> String {
    use crate::scale::TimeScale;

    let max_dur = episodes
        .iter()
        .map(|e| e.duration())
        .max()
        .unwrap_or(lagalyzer_model::DurationNs::from_millis(1));
    let rows = episodes.len().max(1);
    let max_depth = episodes
        .iter()
        .map(|e| e.tree().max_depth())
        .max()
        .unwrap_or(0) as f64;
    let mini_row = (opts.row_height * 0.45).max(4.0);
    let band = (max_depth + 1.0) * mini_row + 18.0;
    let margin = 70.0;
    let height = 30.0 + rows as f64 * band + 20.0;
    let mut doc = SvgDoc::new(opts.width, height);
    doc.text(
        10.0,
        16.0,
        11.0,
        &format!("{} episodes, common scale 0 .. {max_dur}", episodes.len()),
    );
    for (i, episode) in episodes.iter().enumerate() {
        let top = 26.0 + i as f64 * band;
        doc.text(6.0, top + band / 2.0, 9.0, &episode.duration().to_string());
        // Per-episode scale anchored at episode start but spanning the
        // common maximum duration, so shorter episodes render shorter.
        let scale = TimeScale::new(
            episode.start(),
            episode.start() + max_dur,
            margin,
            opts.width - 15.0,
        );
        let depth_rows = episode.tree().max_depth() + 1;
        for (id, node) in episode.tree().iter() {
            let interval = episode.tree().interval(id);
            let row = depth_rows - 1 - node.depth;
            let y = top + row as f64 * mini_row;
            doc.rect(
                scale.x(interval.start),
                y,
                (scale.x(interval.end) - scale.x(interval.start)).max(0.8),
                mini_row - 1.0,
                interval_color(interval.kind),
                Some(&format!(
                    "{} ({})",
                    interval.kind.name(),
                    interval.duration()
                )),
            );
        }
        // Sample dots in a thin band above the bars.
        let gui = episode.thread();
        for snap in episode.samples() {
            if snap.time > episode.start() + max_dur {
                continue;
            }
            if let Some(ts) = snap.thread(gui) {
                doc.circle(
                    scale.x(snap.time),
                    top + depth_rows as f64 * mini_row + 4.0,
                    1.8,
                    state_color(ts.state),
                    Some(&sample_tooltip(ts, symbols, opts.tooltip_frames)),
                );
            }
        }
    }
    doc.finish()
}

#[cfg(test)]
mod gallery_tests {
    use super::*;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn episode(id: u32, start: u64, dur: u64) -> Episode {
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(start)).unwrap();
        b.leaf(
            IntervalKind::Paint,
            None,
            ms(start + 1),
            ms(start + dur - 1),
        )
        .unwrap();
        b.exit(ms(start + dur)).unwrap();
        EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
            .tree(b.finish().unwrap())
            .sample(SampleSnapshot::new(
                ms(start + dur / 2),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Runnable,
                    vec![],
                )],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn gallery_stacks_all_episodes() {
        let symbols = SymbolTable::new();
        let e1 = episode(0, 0, 100);
        let e2 = episode(1, 500, 400);
        let e3 = episode(2, 2000, 50);
        let episodes = vec![&e1, &e2, &e3];
        let svg = render_pattern_gallery(&episodes, &symbols, &SketchOptions::default());
        assert!(svg.starts_with("<svg"));
        // 2 rects per episode (dispatch + paint) + background.
        assert_eq!(svg.matches("<rect").count(), 7);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("3 episodes"));
        // Common scale is the longest episode.
        assert!(svg.contains("400ms"));
    }

    #[test]
    fn empty_gallery_renders() {
        let symbols = SymbolTable::new();
        let svg = render_pattern_gallery(&[], &symbols, &SketchOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("0 episodes"));
    }
}
