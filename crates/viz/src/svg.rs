//! A minimal SVG document builder.
//!
//! Kept dependency-free on purpose: the experiments must regenerate every
//! figure offline. Only the handful of primitives the sketches and charts
//! need are provided; all text is XML-escaped.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Clone, Debug)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

impl SvgDoc {
    /// Creates a document with the given pixel dimensions.
    pub fn new(width: f64, height: f64) -> Self {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    /// Document width in pixels.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height in pixels.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Adds a filled rectangle; `title` becomes a hover tooltip.
    pub fn rect(
        &mut self,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        fill: &str,
        title: Option<&str>,
    ) -> &mut Self {
        let _ = write!(
            self.body,
            r##"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}" stroke="#00000033" stroke-width="0.5">"##,
        );
        self.title(title);
        self.body.push_str("</rect>");
        self
    }

    /// Adds a line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str) -> &mut Self {
        let _ = write!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="1"/>"#,
        );
        self
    }

    /// Adds a circle; `title` becomes a hover tooltip.
    pub fn circle(
        &mut self,
        cx: f64,
        cy: f64,
        r: f64,
        fill: &str,
        title: Option<&str>,
    ) -> &mut Self {
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}">"#,
        );
        self.title(title);
        self.body.push_str("</circle>");
        self
    }

    /// Adds left-anchored text.
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str) -> &mut Self {
        let _ = write!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif">{}</text>"#,
            escape(content),
        );
        self
    }

    /// Adds text with an explicit anchor (`start`, `middle`, `end`).
    pub fn text_anchored(
        &mut self,
        x: f64,
        y: f64,
        size: f64,
        anchor: &str,
        content: &str,
    ) -> &mut Self {
        let _ = write!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="{anchor}">{}</text>"#,
            escape(content),
        );
        self
    }

    /// Adds a polyline through `points`.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str) -> &mut Self {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = write!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="1.5"/>"#,
            pts.join(" "),
        );
        self
    }

    fn title(&mut self, title: Option<&str>) {
        if let Some(t) = title {
            let _ = write!(self.body, "<title>{}</title>", escape(t));
        }
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}"><rect width="100%" height="100%" fill="white"/>{}</svg>"#,
            self.width, self.height, self.width, self.height, self.body,
        )
    }
}

/// Escapes XML special characters.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_is_valid() {
        let svg = SvgDoc::new(100.0, 50.0).finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains(r#"width="100""#));
        assert!(svg.contains(r#"height="50""#));
    }

    #[test]
    fn primitives_render() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.rect(0.0, 1.0, 2.0, 3.0, "#ff0000", Some("tip"))
            .line(0.0, 0.0, 5.0, 5.0, "black")
            .circle(1.0, 1.0, 0.5, "blue", None)
            .text(2.0, 2.0, 9.0, "hello")
            .text_anchored(3.0, 3.0, 9.0, "middle", "mid")
            .polyline(&[(0.0, 0.0), (1.0, 2.0)], "green");
        let svg = doc.finish();
        for needle in [
            "<rect",
            "<line",
            "<circle",
            "<text",
            "<polyline",
            "<title>tip</title>",
            "hello",
            r#"text-anchor="middle""#,
        ] {
            assert!(svg.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn text_is_escaped() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.text(0.0, 0.0, 8.0, "a<b & \"c\"");
        let svg = doc.finish();
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn tooltip_is_escaped() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.rect(0.0, 0.0, 1.0, 1.0, "red", Some("<stack>"));
        assert!(doc.finish().contains("&lt;stack&gt;"));
    }

    #[test]
    fn dimensions_accessible() {
        let doc = SvgDoc::new(640.0, 480.0);
        assert_eq!(doc.width(), 640.0);
        assert_eq!(doc.height(), 480.0);
    }
}
