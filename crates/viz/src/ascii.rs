//! ASCII episode sketches for terminals.
//!
//! The same three-part layout as the SVG sketch, drawn with characters:
//! one line of sample-state markers, one line per tree depth with interval
//! extents, and a time ruler.

use lagalyzer_model::{Episode, IntervalKind, SymbolTable, ThreadState};

/// Renders an episode as fixed-width ASCII art, `width` columns wide.
pub fn ascii_sketch(episode: &Episode, symbols: &SymbolTable, width: usize) -> String {
    let width = width.max(20);
    let tree = episode.tree();
    let start = episode.start().as_nanos();
    let end = episode.end().as_nanos().max(start + 1);
    let span = (end - start) as f64;
    let col = |t: u64| -> usize {
        (((t.saturating_sub(start)) as f64 / span) * (width - 1) as f64).round() as usize
    };

    let mut out = String::new();

    // Sample band.
    let mut band = vec![' '; width];
    let gui = episode.thread();
    for snap in episode.samples() {
        if let Some(ts) = snap.thread(gui) {
            let c = match ts.state {
                ThreadState::Runnable => 'r',
                ThreadState::Blocked => 'B',
                ThreadState::Waiting => 'W',
                ThreadState::Sleeping => 'S',
            };
            band[col(snap.time.as_nanos()).min(width - 1)] = c;
        }
    }
    out.push_str("samples ");
    out.extend(band);
    out.push('\n');

    // One line per depth, deepest first (as in the SVG layout).
    let max_depth = tree.max_depth();
    for depth in (0..=max_depth).rev() {
        let mut row = vec![' '; width];
        for (_, node) in tree.iter() {
            if node.depth != depth {
                continue;
            }
            let c0 = col(node.interval.start.as_nanos());
            let c1 = col(node.interval.end.as_nanos()).max(c0);
            let ch = glyph(node.interval.kind);
            for cell in row.iter_mut().take((c1 + 1).min(width)).skip(c0) {
                *cell = ch;
            }
        }
        out.push_str(&format!("depth {depth} "));
        out.extend(row);
        out.push('\n');
    }

    // Ruler.
    out.push_str("time    ");
    let mut ruler = vec!['-'; width];
    ruler[0] = '|';
    ruler[width - 1] = '|';
    ruler[width / 2] = '|';
    out.extend(ruler);
    out.push('\n');
    out.push_str(&format!(
        "        {} .. {} ({})\n",
        episode.start(),
        episode.end(),
        episode.duration()
    ));

    // Legend for the interval rows actually present.
    out.push_str("legend  ");
    let mut kinds: Vec<IntervalKind> = tree
        .iter()
        .map(|(_, n)| n.interval.kind)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    kinds.sort();
    let parts: Vec<String> = kinds
        .iter()
        .map(|k| format!("{}={}", glyph(*k), k.name()))
        .collect();
    out.push_str(&parts.join(" "));
    out.push('\n');

    // Root symbol line (what this episode did).
    if let Some(first_child) = tree.children(tree.root()).first() {
        if let Some(sym) = tree.interval(*first_child).symbol {
            out.push_str(&format!("root    {}\n", symbols.render(sym)));
        }
    }
    out
}

/// The fill character of an interval type.
fn glyph(kind: IntervalKind) -> char {
    match kind {
        IntervalKind::Dispatch => '=',
        IntervalKind::Listener => 'L',
        IntervalKind::Paint => 'P',
        IntervalKind::Native => 'N',
        IntervalKind::Async => 'A',
        IntervalKind::Gc => 'G',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn fixture() -> (Episode, SymbolTable) {
        let mut symbols = SymbolTable::new();
        let paint = symbols.method("javax.swing.JFrame", "paint");
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
        b.enter(IntervalKind::Paint, Some(paint), ms(100)).unwrap();
        b.leaf(IntervalKind::Gc, None, ms(400), ms(600)).unwrap();
        b.exit(ms(900)).unwrap();
        b.exit(ms(1000)).unwrap();
        let e = EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
            .tree(b.finish().unwrap())
            .sample(SampleSnapshot::new(
                ms(200),
                vec![ThreadSample::new(
                    ThreadId::from_raw(0),
                    ThreadState::Runnable,
                    vec![],
                )],
            ))
            .build()
            .unwrap();
        (e, symbols)
    }

    #[test]
    fn sketch_has_rows_for_all_depths() {
        let (e, s) = fixture();
        let art = ascii_sketch(&e, &s, 80);
        assert!(art.contains("depth 0"));
        assert!(art.contains("depth 1"));
        assert!(art.contains("depth 2"));
        assert!(art.contains("samples"));
        assert!(art.contains("legend"));
    }

    #[test]
    fn glyphs_appear_in_rows() {
        let (e, s) = fixture();
        let art = ascii_sketch(&e, &s, 80);
        let lines: Vec<&str> = art.lines().collect();
        let depth0 = lines.iter().find(|l| l.starts_with("depth 0")).unwrap();
        assert!(depth0.contains('='));
        let depth2 = lines.iter().find(|l| l.starts_with("depth 2")).unwrap();
        assert!(depth2.contains('G'));
    }

    #[test]
    fn sample_marker_present() {
        let (e, s) = fixture();
        let art = ascii_sketch(&e, &s, 80);
        let sample_line = art.lines().next().unwrap();
        assert!(sample_line.contains('r'));
    }

    #[test]
    fn duration_footer() {
        let (e, s) = fixture();
        let art = ascii_sketch(&e, &s, 80);
        assert!(art.contains("1.00s"));
    }

    #[test]
    fn narrow_width_clamped() {
        let (e, s) = fixture();
        let art = ascii_sketch(&e, &s, 1);
        assert!(art.lines().count() >= 4, "still renders at minimum width");
    }

    #[test]
    fn root_symbol_line() {
        let (e, s) = fixture();
        let art = ascii_sketch(&e, &s, 60);
        assert!(art.contains("javax.swing.JFrame.paint"));
    }
}
