//! Session trace timelines (the LiLa Viewer visualization LagAlyzer's
//! episode sketches extend, paper §VI).
//!
//! A timeline shows the whole session along one time axis: each traced
//! episode is a block whose color encodes its trigger class and whose
//! height encodes perceptibility; session-level GC events appear as marks
//! under the axis. It is the "where do I even look" view a developer opens
//! before drilling into a single episode's sketch.

use lagalyzer_core::session::AnalysisSession;
use lagalyzer_core::trigger::Trigger;
use lagalyzer_model::TimeNs;

use crate::scale::TimeScale;
use crate::svg::SvgDoc;

/// Rendering options for [`render_timeline`].
#[derive(Clone, Debug)]
pub struct TimelineOptions {
    /// Total image width in pixels.
    pub width: f64,
    /// Height of a perceptible episode's block.
    pub tall: f64,
    /// Height of an imperceptible episode's block.
    pub short: f64,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 1200.0,
            tall: 46.0,
            short: 14.0,
        }
    }
}

/// The fill color of a trigger class on the timeline.
pub fn trigger_color(trigger: Trigger) -> &'static str {
    match trigger {
        Trigger::Input => "#4c78a8",
        Trigger::Output => "#59a14f",
        Trigger::Asynchronous => "#b07aa1",
        Trigger::Unspecified => "#9c9c9c",
    }
}

/// Renders the whole session as an SVG timeline.
pub fn render_timeline(session: &AnalysisSession, opts: &TimelineOptions) -> String {
    let trace = session.trace();
    let end = TimeNs::ZERO + trace.meta().end_to_end;
    let margin = 10.0;
    let band_top = 40.0;
    let axis_y = band_top + opts.tall + 8.0;
    let height = axis_y + 46.0;
    let mut doc = SvgDoc::new(opts.width, height);
    let scale = TimeScale::new(TimeNs::ZERO, end, margin, opts.width - margin);

    doc.text(
        margin,
        18.0,
        12.0,
        &format!(
            "{} — {} traced episodes, {} perceptible, {} filtered",
            trace.meta().application,
            trace.episodes().len(),
            session.perceptible_episodes().count(),
            trace.short_episode_count()
        ),
    );

    // Legend.
    let mut lx = margin;
    for trigger in Trigger::ALL {
        doc.rect(lx, 24.0, 9.0, 9.0, trigger_color(trigger), None);
        doc.text(lx + 12.0, 32.0, 9.0, trigger.label());
        lx += 12.0 + 7.0 * trigger.label().len() as f64 + 14.0;
    }

    // Episode blocks, perceptible ones taller and labeled via tooltip.
    for episode in session.episodes() {
        let x0 = scale.x(episode.start());
        let x1 = scale.x(episode.end());
        let perceptible = session.is_perceptible(episode);
        let h = if perceptible { opts.tall } else { opts.short };
        let trigger = Trigger::of_episode(episode);
        doc.rect(
            x0,
            band_top + opts.tall - h,
            (x1 - x0).max(0.8),
            h,
            trigger_color(trigger),
            Some(&format!(
                "{} {} ({}, {})",
                episode.id(),
                episode.duration(),
                trigger,
                if perceptible { "perceptible" } else { "ok" }
            )),
        );
    }

    // Time axis with ticks.
    doc.line(margin, axis_y, opts.width - margin, axis_y, "#333333");
    for tick in scale.ticks(10) {
        let x = scale.x(tick);
        doc.line(x, axis_y, x, axis_y + 4.0, "#333333");
        doc.text_anchored(x, axis_y + 15.0, 9.0, "middle", &tick.to_string());
    }

    // GC marks under the axis.
    for gc in trace.gc_events() {
        let x0 = scale.x(gc.start);
        let x1 = scale.x(gc.end);
        doc.rect(
            x0,
            axis_y + 20.0,
            (x1 - x0).max(0.8),
            8.0,
            if gc.major { "#e15759" } else { "#f1a1a2" },
            Some(&format!(
                "{} GC {} ({})",
                if gc.major { "major" } else { "minor" },
                gc.start,
                gc.duration()
            )),
        );
    }
    doc.text(margin, axis_y + 42.0, 9.0, "GC events");
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_core::session::AnalysisConfig;
    use lagalyzer_model::prelude::*;

    fn ms(v: u64) -> TimeNs {
        TimeNs::from_millis(v)
    }

    fn session() -> AnalysisSession {
        let meta = SessionMeta {
            application: "TimelineApp".into(),
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: DurationNs::from_secs(2),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut b = SessionTraceBuilder::new(meta, SymbolTable::new());
        let paint = b.symbols_mut().method("javax.swing.JPanel", "paint");
        // One fast input episode, one perceptible output episode.
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(100)).unwrap();
        t.leaf(IntervalKind::Listener, Some(paint), ms(101), ms(119))
            .unwrap();
        t.exit(ms(120)).unwrap();
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(0), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut t = IntervalTreeBuilder::new();
        t.enter(IntervalKind::Dispatch, None, ms(500)).unwrap();
        t.leaf(IntervalKind::Paint, Some(paint), ms(501), ms(799))
            .unwrap();
        t.exit(ms(800)).unwrap();
        b.push_episode(
            EpisodeBuilder::new(EpisodeId::from_raw(1), ThreadId::from_raw(0))
                .tree(t.finish().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        b.push_gc(GcEvent {
            start: ms(300),
            end: ms(340),
            major: true,
        });
        AnalysisSession::new(b.finish(), AnalysisConfig::default())
    }

    #[test]
    fn timeline_contains_episodes_axis_and_gc() {
        let s = session();
        let svg = render_timeline(&s, &TimelineOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("TimelineApp"));
        // 2 episode rects + 1 GC rect + 4 legend rects + background.
        assert_eq!(svg.matches("<rect").count(), 8);
        assert!(svg.contains("perceptible"));
        assert!(svg.contains("major GC"));
    }

    #[test]
    fn blocks_colored_by_trigger() {
        let s = session();
        let svg = render_timeline(&s, &TimelineOptions::default());
        assert!(svg.contains(trigger_color(Trigger::Input)));
        assert!(svg.contains(trigger_color(Trigger::Output)));
    }

    #[test]
    fn trigger_colors_are_distinct() {
        let colors: std::collections::HashSet<&str> =
            Trigger::ALL.iter().map(|t| trigger_color(*t)).collect();
        assert_eq!(colors.len(), 4);
    }

    #[test]
    fn legend_lists_all_triggers() {
        let s = session();
        let svg = render_timeline(&s, &TimelineOptions::default());
        for t in Trigger::ALL {
            assert!(svg.contains(t.label()), "{}", t.label());
        }
    }
}
