//! Robustness: the simulator must not panic (and must keep its structural
//! guarantees) for arbitrary — including adversarial — profile parameters,
//! not just the 14 calibrated ones.

use lagalyzer_model::DurationNs;
use lagalyzer_sim::profile::{
    AppProfile, BackgroundThreads, OccurrenceMix, SessionScale, TimeMix, TriggerMix,
};
use lagalyzer_sim::runner;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct FuzzParams {
    traced: u64,
    structured_frac: f64,
    perceptible: u64,
    patterns: u64,
    singleton_frac: f64,
    tree_size: u64,
    tree_depth: u64,
    in_eps: f64,
    trig: [f64; 4],
    occ: [f64; 4],
    gc: f64,
    native: f64,
    sleep: f64,
    explicit_gc: bool,
}

fn params() -> impl Strategy<Value = FuzzParams> {
    (
        (20u64..400, 0.1f64..1.0, 0u64..60, 2u64..80, 0.0f64..1.0),
        (1u64..25, 1u64..14, 0.01f64..0.6),
        [0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0],
        [0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0],
        (0.0f64..0.7, 0.0f64..0.4, 0.0f64..0.7, any::<bool>()),
    )
        .prop_map(
            |(
                (traced, structured_frac, perceptible, patterns, singleton_frac),
                (tree_size, tree_depth, in_eps),
                trig,
                occ,
                (gc, native, sleep, explicit_gc),
            )| FuzzParams {
                traced,
                structured_frac,
                perceptible,
                patterns,
                singleton_frac,
                tree_size,
                tree_depth,
                in_eps,
                trig,
                occ,
                gc,
                native,
                sleep,
                explicit_gc,
            },
        )
}

fn profile_from(p: &FuzzParams) -> AppProfile {
    AppProfile {
        name: "Fuzz".into(),
        version: "0".into(),
        classes: 1,
        description: "fuzzed".into(),
        package: "org.fuzz".into(),
        scale: SessionScale {
            e2e_secs: 60,
            in_episode_fraction: p.in_eps,
            short_episodes: 500,
            traced_episodes: p.traced,
            structured_episodes: ((p.traced as f64) * p.structured_frac) as u64,
            perceptible_episodes: p.perceptible.min(p.traced),
            distinct_patterns: p.patterns,
            singleton_fraction: p.singleton_frac,
            tree_size: p.tree_size,
            tree_depth: p.tree_depth,
        },
        trigger_perceptible: TriggerMix {
            input: p.trig[0],
            output: p.trig[1],
            asynchronous: p.trig[2],
            unspecified: p.trig[3],
        },
        trigger_all: TriggerMix {
            input: p.trig[0],
            output: p.trig[1],
            asynchronous: p.trig[2],
            unspecified: p.trig[3],
        },
        occurrence: OccurrenceMix {
            always: p.occ[0],
            sometimes: p.occ[1],
            once: p.occ[2],
            never: p.occ[3],
        },
        time_perceptible: TimeMix {
            library: 0.5,
            gc: p.gc,
            native: p.native,
            blocked: 0.05,
            waiting: 0.05,
            sleeping: p.sleep,
        },
        time_all: TimeMix {
            library: 0.5,
            gc: p.gc / 2.0,
            native: p.native,
            blocked: 0.0,
            waiting: 0.0,
            sleeping: 0.0,
        },
        background: BackgroundThreads {
            count: 2,
            runnable_all: 0.1,
            runnable_perceptible: 0.1,
        },
        explicit_major_gc: p.explicit_gc,
        repaint_manager_fraction: 0.2,
        perceptible_median_ms: 200,
        sample_period: DurationNs::from_millis(10),
        extra_stack_frames: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any profile yields a structurally valid trace.
    #[test]
    fn fuzzed_profiles_simulate_cleanly(p in params(), seed in 0u64..1000) {
        let profile = profile_from(&p);
        let trace = runner::simulate_session(&profile, 0, seed);
        prop_assert!(!trace.episodes().is_empty());
        let mut last = lagalyzer_model::TimeNs::ZERO;
        for e in trace.episodes() {
            prop_assert!(e.tree().validate().is_ok());
            prop_assert!(e.duration() >= trace.meta().filter_threshold);
            prop_assert!(e.start() >= last);
            last = e.start();
            for s in e.samples() {
                prop_assert!(s.time >= e.start() && s.time <= e.end());
            }
        }
        prop_assert_eq!(trace.short_episode_count(), profile.scale.short_episodes);
    }
}
