//! Structural invariants of simulated traces, checked over the whole
//! application suite (DESIGN.md §6).

use lagalyzer_model::prelude::*;
use lagalyzer_sim::{apps, runner};

/// Every simulated trace obeys the model's invariants end to end.
#[test]
fn all_apps_produce_structurally_valid_traces() {
    for profile in apps::standard_suite() {
        let trace = runner::simulate_session(&profile, 0, 99);
        assert_eq!(trace.meta().application, profile.name);
        let mut last_start = TimeNs::ZERO;
        for episode in trace.episodes() {
            // Trees validate and are rooted at a dispatch.
            episode.tree().validate().unwrap_or_else(|e| {
                panic!("{}: invalid tree: {e}", profile.name);
            });
            assert_eq!(episode.tree().root_interval().kind, IntervalKind::Dispatch);
            // Traced episodes are above the filter threshold.
            assert!(
                episode.duration() >= trace.meta().filter_threshold,
                "{}: traced episode below filter",
                profile.name
            );
            // Episodes are time-ordered.
            assert!(episode.start() >= last_start);
            last_start = episode.start();
            // Samples lie inside the episode and include the GUI thread.
            for snap in episode.samples() {
                assert!(snap.time >= episode.start() && snap.time <= episode.end());
                assert!(snap.thread(trace.meta().gui_thread).is_some());
            }
        }
        // GC events are ordered and well-formed.
        for pair in trace.gc_events().windows(2) {
            assert!(pair[0].start <= pair[1].start, "{}", profile.name);
        }
        for gc in trace.gc_events() {
            assert!(gc.end >= gc.start);
        }
    }
}

/// Samples are never taken inside a GC interval that lives in the episode
/// tree (JVMTI-style suppression).
#[test]
fn samples_suppressed_inside_tree_gcs() {
    for profile in [apps::arabeske(), apps::argo_uml()] {
        let trace = runner::simulate_session(&profile, 1, 7);
        for episode in trace.episodes() {
            let tree = episode.tree();
            let gc_windows: Vec<(TimeNs, TimeNs)> = tree
                .pre_order()
                .filter(|&id| tree.interval(id).kind == IntervalKind::Gc)
                .map(|id| (tree.interval(id).start, tree.interval(id).end))
                .collect();
            if gc_windows.is_empty() {
                continue;
            }
            for snap in episode.samples() {
                for &(s, e) in &gc_windows {
                    assert!(
                        snap.time < s || snap.time >= e,
                        "{}: sample at {} inside GC [{s}, {e}]",
                        profile.name,
                        snap.time
                    );
                }
            }
        }
    }
}

/// The suite's session traces honor their published short-episode counts
/// exactly (the tracer reports the count it dropped).
#[test]
fn short_counts_exact_across_suite() {
    for profile in apps::standard_suite() {
        let trace = runner::simulate_session(&profile, 2, 5);
        assert_eq!(
            trace.short_episode_count(),
            profile.scale.short_episodes,
            "{}",
            profile.name
        );
        assert!(trace.short_episode_time() > DurationNs::ZERO);
    }
}

/// Different seeds give different sessions; equal seeds identical ones.
#[test]
fn determinism_and_variation() {
    let p = apps::find_bugs();
    let a = runner::simulate_session(&p, 0, 1);
    let b = runner::simulate_session(&p, 0, 1);
    let c = runner::simulate_session(&p, 0, 2);
    assert_eq!(a.episodes(), b.episodes());
    assert_ne!(
        a.episodes()
            .iter()
            .map(|e| e.duration().as_nanos())
            .collect::<Vec<_>>(),
        c.episodes()
            .iter()
            .map(|e| e.duration().as_nanos())
            .collect::<Vec<_>>()
    );
}
