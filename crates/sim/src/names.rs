//! Synthetic symbol names.
//!
//! Generated traces need believable class and method names: the location
//! analysis (Fig 6) classifies samples by class-name prefix, and pattern
//! signatures include symbolic information. This module provides pools of
//! runtime-library names (JDK, Swing, Java2D, Apple toolkit) and generates
//! per-application class names under the application's root package.

use lagalyzer_model::{MethodRef, SymbolTable};

use crate::rng::SimRng;

/// Swing component classes used for paint chains.
pub const SWING_PAINT_CLASSES: &[&str] = &[
    "javax.swing.JFrame",
    "javax.swing.JRootPane",
    "javax.swing.JLayeredPane",
    "javax.swing.JPanel",
    "javax.swing.JToolBar",
    "javax.swing.JComponent",
    "javax.swing.JScrollPane",
    "javax.swing.JViewport",
    "javax.swing.JTree",
    "javax.swing.JTable",
    "javax.swing.JSplitPane",
    "javax.swing.JTabbedPane",
];

/// Native (JNI) entry points in the Java2D pipeline.
pub const NATIVE_CLASSES: &[&str] = &[
    "sun.java2d.loops.DrawLine",
    "sun.java2d.loops.Blit",
    "sun.java2d.loops.FillRect",
    "sun.java2d.loops.DrawGlyphList",
    "sun.awt.image.ImageRepresentation",
    "sun.font.StrikeCache",
];

/// Runtime-library classes whose methods show up in sampled stacks.
pub const LIBRARY_STACK_CLASSES: &[&str] = &[
    "javax.swing.plaf.basic.BasicComboBoxUI",
    "javax.swing.RepaintManager",
    "javax.swing.text.PlainView",
    "java.awt.EventQueue",
    "java.awt.Container",
    "java.util.HashMap",
    "java.util.ArrayList",
    "java.lang.String",
    "sun.awt.SunToolkit",
    "javax.swing.SwingUtilities",
];

/// The Apple toolkit class hosting the combo-box blink animation the paper
/// traces every `Thread.sleep` back to (§IV-E).
pub const APPLE_COMBOBOX_CLASS: &str = "com.apple.laf.AquaComboBoxUI";
/// The blinking method on [`APPLE_COMBOBOX_CLASS`].
pub const APPLE_COMBOBOX_METHOD: &str = "blinkSelection";

/// Library classes implicated in monitor contention (FreeMind's display
/// configuration path in the paper).
pub const CONTENTION_CLASSES: &[&str] = &[
    "java.awt.GraphicsEnvironment",
    "sun.awt.CGraphicsDevice",
    "java.awt.Component",
];

/// Listener method names for input episodes.
pub const LISTENER_METHODS: &[&str] = &[
    "actionPerformed",
    "mouseClicked",
    "mousePressed",
    "mouseDragged",
    "keyTyped",
    "keyPressed",
    "stateChanged",
    "valueChanged",
    "itemStateChanged",
];

/// Method names for application computation frames.
pub const APP_METHODS: &[&str] = &[
    "recompute",
    "updateModel",
    "layoutChildren",
    "renderScene",
    "applyChange",
    "refreshView",
    "rebuildIndex",
    "computeBounds",
    "validateInput",
    "loadChunk",
];

/// Per-application name generator rooted at the app's package.
#[derive(Clone, Debug)]
pub struct NamePool {
    package: String,
    class_stems: Vec<&'static str>,
}

impl NamePool {
    /// Creates a pool for an application root package (e.g. `org.jmol`).
    pub fn new(package: &str) -> Self {
        NamePool {
            package: package.to_owned(),
            class_stems: vec![
                "Editor",
                "Canvas",
                "Model",
                "Document",
                "Controller",
                "View",
                "Renderer",
                "Manager",
                "Panel",
                "Action",
                "Tool",
                "Graph",
                "Node",
                "Layer",
                "Shape",
            ],
        }
    }

    /// A deterministic application class name for index `i`, e.g.
    /// `org.jmol.Renderer7`.
    pub fn app_class(&self, i: usize) -> String {
        let stem = self.class_stems[i % self.class_stems.len()];
        format!("{}.{}{}", self.package, stem, i / self.class_stems.len())
    }

    /// Interns a random application method.
    pub fn app_method(&self, symbols: &mut SymbolTable, rng: &mut SimRng, i: usize) -> MethodRef {
        let method = APP_METHODS[rng.index(APP_METHODS.len())];
        symbols.method(&self.app_class(i), method)
    }

    /// Interns a random listener on an application class.
    pub fn listener(&self, symbols: &mut SymbolTable, rng: &mut SimRng, i: usize) -> MethodRef {
        let method = LISTENER_METHODS[rng.index(LISTENER_METHODS.len())];
        symbols.method(&self.app_class(i), method)
    }

    /// Interns a random Swing paint method.
    pub fn paint(&self, symbols: &mut SymbolTable, rng: &mut SimRng) -> MethodRef {
        let class = SWING_PAINT_CLASSES[rng.index(SWING_PAINT_CLASSES.len())];
        symbols.method(class, "paint")
    }

    /// Interns a random native entry point.
    pub fn native(&self, symbols: &mut SymbolTable, rng: &mut SimRng) -> MethodRef {
        let class = NATIVE_CLASSES[rng.index(NATIVE_CLASSES.len())];
        let method = class.rsplit('.').next().expect("class names are dotted");
        symbols.method(class, method)
    }

    /// Interns a random runtime-library stack frame method.
    pub fn library_frame(&self, symbols: &mut SymbolTable, rng: &mut SimRng) -> MethodRef {
        let class = LIBRARY_STACK_CLASSES[rng.index(LIBRARY_STACK_CLASSES.len())];
        let method = APP_METHODS[rng.index(APP_METHODS.len())];
        symbols.method(class, method)
    }

    /// Interns the Apple combo-box blink method (sleep attribution).
    pub fn apple_blink(&self, symbols: &mut SymbolTable) -> MethodRef {
        symbols.method(APPLE_COMBOBOX_CLASS, APPLE_COMBOBOX_METHOD)
    }

    /// Interns a contended-monitor library frame.
    pub fn contention_frame(&self, symbols: &mut SymbolTable, rng: &mut SimRng) -> MethodRef {
        let class = CONTENTION_CLASSES[rng.index(CONTENTION_CLASSES.len())];
        symbols.method(class, "getDisplayMode")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lagalyzer_model::{CodeOrigin, OriginClassifier};

    #[test]
    fn app_classes_are_application_code() {
        let pool = NamePool::new("org.argouml");
        let classifier = OriginClassifier::java_default();
        for i in 0..40 {
            let name = pool.app_class(i);
            assert_eq!(
                classifier.classify_name(&name),
                CodeOrigin::Application,
                "{name}"
            );
        }
    }

    #[test]
    fn library_pools_are_library_code() {
        let classifier = OriginClassifier::java_default();
        for class in SWING_PAINT_CLASSES
            .iter()
            .chain(NATIVE_CLASSES)
            .chain(LIBRARY_STACK_CLASSES)
            .chain(CONTENTION_CLASSES)
            .chain([&APPLE_COMBOBOX_CLASS])
        {
            assert_eq!(
                classifier.classify_name(class),
                CodeOrigin::RuntimeLibrary,
                "{class}"
            );
        }
    }

    #[test]
    fn app_class_names_are_distinct_per_index() {
        let pool = NamePool::new("org.x");
        let a = pool.app_class(0);
        let b = pool.app_class(1);
        let c = pool.app_class(15); // wraps the stem list
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn interned_names_render() {
        let pool = NamePool::new("org.x");
        let mut symbols = SymbolTable::new();
        let mut rng = SimRng::new(1);
        let m = pool.paint(&mut symbols, &mut rng);
        assert!(symbols.render(m).ends_with(".paint"));
        let n = pool.native(&mut symbols, &mut rng);
        assert!(symbols.render(n).starts_with("sun."));
        let blink = pool.apple_blink(&mut symbols);
        assert_eq!(
            symbols.render(blink),
            "com.apple.laf.AquaComboBoxUI.blinkSelection"
        );
    }
}
