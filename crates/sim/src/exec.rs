//! Template execution: turning an [`EpisodeTemplate`] into a concrete
//! [`Episode`] with drawn timing, allocation-driven garbage collections,
//! and sampled thread states.

use lagalyzer_model::prelude::*;

use crate::gc::{GcDemand, GcModel};
use crate::names::NamePool;
use crate::profile::BackgroundThreads;
use crate::rng::SimRng;
use crate::template::{EpisodeTemplate, ScriptNode};

/// Shared mutable state threaded through one session's episode executions.
pub struct ExecContext<'a> {
    /// Symbol table of the session under construction.
    pub symbols: &'a mut SymbolTable,
    /// The session heap.
    pub gc: &'a mut GcModel,
    /// The session's random stream.
    pub rng: &'a mut SimRng,
    /// Name generator for stack frames.
    pub pool: &'a NamePool,
    /// The GUI thread id.
    pub gui_thread: ThreadId,
    /// Background-thread behaviour.
    pub background: BackgroundThreads,
    /// Stack-sampler cadence.
    pub sample_period: DurationNs,
    /// Extra plumbing frames drawn beneath each sampled stack (see
    /// [`crate::AppProfile::extra_stack_frames`]). Zero leaves the random
    /// stream untouched, so default-profile sessions are bit-identical to
    /// those generated before the knob existed.
    pub extra_stack_frames: u64,
    /// Instrumentation cost the tracer adds per recorded interval event
    /// (enter or exit). Zero models LagAlyzer's idealized tracer; nonzero
    /// values drive the perturbation study the paper defers to future
    /// work (§V: "We plan to study the perturbation of LiLa").
    pub tracer_overhead_per_event: DurationNs,
}

/// Executes `template` as one episode dispatched at `start`.
///
/// `slow` selects the perceptible duration model (the caller implements the
/// occurrence classes by deciding which executions are slow).
pub fn execute_template(
    template: &EpisodeTemplate,
    id: EpisodeId,
    start: TimeNs,
    slow: bool,
    ctx: &mut ExecContext<'_>,
) -> Episode {
    let mut duration = draw_duration(template, slow, ctx.rng);
    // Tracer perturbation: every interval produces an enter and an exit
    // record, each costing the instrumentation overhead, which stretches
    // the episode the user experiences.
    let events = 2 * (template.tree_size() as u64 + 1);
    duration += ctx.tracer_overhead_per_event * events;
    let end = start + duration;

    // --- build the interval tree, inserting GCs at allocation pressure ---
    let mut builder = IntervalTreeBuilder::new();
    let mut gc_windows: Vec<GcEvent> = Vec::new();
    builder
        .enter(IntervalKind::Dispatch, None, start)
        .expect("fresh builder accepts a root");
    build_children(
        &mut builder,
        &template.structure,
        start,
        end,
        template,
        ctx,
        &mut gc_windows,
    );
    builder.exit(end).expect("dispatch closes after children");
    let tree = builder.finish().expect("template trees are well-formed");

    // --- sample the threads through the episode ---
    let samples = sample_episode(&tree, template, slow, &gc_windows, ctx);

    EpisodeBuilder::new(id, ctx.gui_thread)
        .tree(tree)
        .samples(samples)
        .build()
        .expect("generated samples lie within the episode")
}

/// Draws an episode duration from the template's slow or fast model.
fn draw_duration(template: &EpisodeTemplate, slow: bool, rng: &mut SimRng) -> DurationNs {
    let ms = if slow {
        rng.log_normal(template.slow_median_ms as f64, 0.4)
            .clamp(105.0, 8_000.0)
    } else {
        rng.log_normal(template.fast_median_ms as f64, 0.7)
            .clamp(3.2, 90.0)
    };
    DurationNs::from_nanos((ms * 1e6) as u64)
}

/// Recursively materializes script children inside the window `[s, e)`,
/// running self-time (allocation, GC insertion) in the gaps.
fn build_children(
    builder: &mut IntervalTreeBuilder,
    children: &[ScriptNode],
    s: TimeNs,
    e: TimeNs,
    template: &EpisodeTemplate,
    ctx: &mut ExecContext<'_>,
    gc_windows: &mut Vec<GcEvent>,
) {
    let window = e - s;
    if children.is_empty() {
        self_time(builder, s, e, template, ctx, gc_windows);
        return;
    }
    let child_total: f64 = children.iter().map(|c| c.span).sum();
    let gap_total = (1.0 - child_total.min(1.0)).max(0.0);
    let gap = window.mul_f64(gap_total / (children.len() + 1) as f64);

    let mut cursor = s;
    for child in children {
        let child_start = (cursor + gap).min(e);
        let child_end = (child_start + window.mul_f64(child.span)).min(e);
        if child_end <= child_start {
            continue;
        }
        self_time(builder, cursor, child_start, template, ctx, gc_windows);
        build_node(
            builder,
            child,
            child_start,
            child_end,
            template,
            ctx,
            gc_windows,
        );
        cursor = child_end;
    }
    self_time(builder, cursor, e, template, ctx, gc_windows);
}

/// Materializes one script node over `[s, e)`.
fn build_node(
    builder: &mut IntervalTreeBuilder,
    node: &ScriptNode,
    s: TimeNs,
    e: TimeNs,
    template: &EpisodeTemplate,
    ctx: &mut ExecContext<'_>,
    gc_windows: &mut Vec<GcEvent>,
) {
    if node.kind == IntervalKind::Gc {
        // Explicit GC in the script (System.gc()): a major collection.
        let event = ctx.gc.record_explicit_major(s, e);
        gc_windows.push(event);
        builder
            .enter(IntervalKind::Gc, None, s)
            .expect("nested enter");
        builder.exit(e).expect("nested exit");
        return;
    }
    builder
        .enter(node.kind, node.symbol, s)
        .expect("nested enter");
    build_children(builder, &node.children, s, e, template, ctx, gc_windows);
    builder.exit(e).expect("nested exit");
}

/// Runs GUI-thread self-time over `[s, e)`: allocates at the template's
/// rate and inserts minor/major collections when the heap demands them and
/// the segment has room.
fn self_time(
    builder: &mut IntervalTreeBuilder,
    s: TimeNs,
    e: TimeNs,
    template: &EpisodeTemplate,
    ctx: &mut ExecContext<'_>,
    gc_windows: &mut Vec<GcEvent>,
) {
    if e <= s || template.alloc_rate == 0 {
        return;
    }
    let mut cursor = s;
    // Advance in sampler-period steps so collections land mid-segment.
    while cursor < e {
        let step_end = (cursor + ctx.sample_period).min(e);
        let step = step_end - cursor;
        let bytes = (template.alloc_rate as f64 * step.as_secs_f64()) as u64;
        let demand = ctx.gc.allocate(bytes);
        if demand != GcDemand::None {
            let room = e - step_end;
            let event = match demand {
                GcDemand::Minor => ctx.gc.run_minor_within(step_end, e, ctx.rng),
                GcDemand::Major => ctx.gc.run_major_within(step_end, e, ctx.rng),
                GcDemand::None => unreachable!(),
            };
            if let Some(event) = event {
                builder
                    .enter(IntervalKind::Gc, None, event.start)
                    .expect("gc enter");
                builder.exit(event.end).expect("gc exit");
                gc_windows.push(event);
                cursor = event.end;
                continue;
            }
            // No room for even a minimal pause: the collection happens at
            // the next opportunity (possibly outside this episode).
            let _ = room;
        }
        cursor = step_end;
    }
}

/// Samples all threads through the episode at the configured cadence,
/// honoring JVMTI-style suppression inside (and shortly before) GCs.
fn sample_episode(
    tree: &IntervalTree,
    template: &EpisodeTemplate,
    slow: bool,
    gc_windows: &[GcEvent],
    ctx: &mut ExecContext<'_>,
) -> Vec<SampleSnapshot> {
    let behavior = if slow {
        &template.behavior_slow
    } else {
        &template.behavior_fast
    };
    let start = tree.root_interval().start;
    let end = tree.root_interval().end;
    let mut samples = Vec::new();
    // The sampler ticks on a session-global grid, so even sub-period
    // episodes usually catch one sample (as a real periodic sampler would).
    let period = ctx.sample_period.as_nanos().max(1);
    let mut t = TimeNs::from_nanos((start.as_nanos() / period + 1) * period);
    while t < end {
        if suppressed(t, gc_windows) {
            t += ctx.sample_period;
            continue;
        }
        let mut threads = Vec::with_capacity(1 + ctx.background.count as usize);
        threads.push(gui_sample(tree, t, behavior, template, ctx));
        let bg_runnable_p = if slow {
            ctx.background.runnable_perceptible
        } else {
            ctx.background.runnable_all
        };
        for j in 0..ctx.background.count {
            threads.push(background_sample(
                ThreadId::from_raw(ctx.gui_thread.as_raw() + 1 + j),
                bg_runnable_p,
                ctx,
            ));
        }
        samples.push(SampleSnapshot::new(t, threads));
        t += ctx.sample_period;
    }
    samples
}

/// True if the sampler is suppressed at `t`: inside a stop-the-world
/// window, or in the run-up to one (threads already heading to the safe
/// point — the effect the paper observes around Fig 1's GC).
fn suppressed(t: TimeNs, gc_windows: &[GcEvent]) -> bool {
    gc_windows.iter().any(|gc| {
        let margin = gc.duration() / 3;
        let lead_start = if gc.start.as_nanos() >= margin.as_nanos() {
            gc.start - margin
        } else {
            TimeNs::ZERO
        };
        lead_start <= t && t < gc.end
    })
}

/// Draws the GUI thread's sample at `t`.
fn gui_sample(
    tree: &IntervalTree,
    t: TimeNs,
    behavior: &crate::template::GuiBehavior,
    template: &EpisodeTemplate,
    ctx: &mut ExecContext<'_>,
) -> ThreadSample {
    let u = ctx.rng.unit();
    let (state, top) = if u < behavior.blocked {
        (
            ThreadState::Blocked,
            StackFrame::java(ctx.pool.contention_frame(ctx.symbols, ctx.rng)),
        )
    } else if u < behavior.blocked + behavior.waiting {
        (
            ThreadState::Waiting,
            StackFrame::java(ctx.symbols.method("java.awt.EventQueue", "getNextEvent")),
        )
    } else if u < behavior.blocked + behavior.waiting + behavior.sleeping {
        (
            ThreadState::Sleeping,
            StackFrame::java(ctx.pool.apple_blink(ctx.symbols)),
        )
    } else {
        // Runnable: the executing frame depends on where the episode is.
        let deepest = tree.deepest_at(t);
        let native = deepest.is_some_and(|id| tree.interval(id).kind == IntervalKind::Native);
        let top = if native {
            let sym = deepest
                .and_then(|id| tree.interval(id).symbol)
                .unwrap_or_else(|| ctx.pool.native(ctx.symbols, ctx.rng));
            StackFrame::native(sym)
        } else if ctx.rng.chance(behavior.library) {
            StackFrame::java(ctx.pool.library_frame(ctx.symbols, ctx.rng))
        } else {
            StackFrame::java(
                ctx.pool
                    .app_method(ctx.symbols, ctx.rng, template.index * 3),
            )
        };
        (ThreadState::Runnable, top)
    };
    let mut stack = vec![top];
    for depth in 0..ctx.rng.range_u64(2, 5) {
        // Deeper frames alternate between library plumbing and app code.
        let frame = if depth % 2 == 0 {
            StackFrame::java(ctx.pool.library_frame(ctx.symbols, ctx.rng))
        } else {
            StackFrame::java(ctx.pool.app_method(
                ctx.symbols,
                ctx.rng,
                template.index * 3 + depth as usize,
            ))
        };
        stack.push(frame);
    }
    push_plumbing_frames(&mut stack, ctx);
    ThreadSample::new(ctx.gui_thread, state, stack)
}

/// Appends the deep event-pump / layout plumbing below the sampled frames
/// when the profile asks for realistic stack depth. Draws nothing from the
/// random stream when the knob is zero.
fn push_plumbing_frames(stack: &mut Vec<StackFrame>, ctx: &mut ExecContext<'_>) {
    if ctx.extra_stack_frames == 0 {
        return;
    }
    let lo = ctx.extra_stack_frames / 2;
    let n = ctx.rng.range_u64(lo, ctx.extra_stack_frames);
    stack.reserve(n as usize);
    for depth in 0..n {
        let frame = if depth % 3 == 2 {
            StackFrame::java(ctx.pool.app_method(ctx.symbols, ctx.rng, depth as usize))
        } else {
            StackFrame::java(ctx.pool.library_frame(ctx.symbols, ctx.rng))
        };
        stack.push(frame);
    }
}

/// Draws a background thread's sample.
fn background_sample(thread: ThreadId, runnable_p: f64, ctx: &mut ExecContext<'_>) -> ThreadSample {
    if ctx.rng.chance(runnable_p) {
        let mut stack = vec![
            StackFrame::java(ctx.pool.app_method(ctx.symbols, ctx.rng, thread.index())),
            StackFrame::java(ctx.pool.library_frame(ctx.symbols, ctx.rng)),
        ];
        push_plumbing_frames(&mut stack, ctx);
        ThreadSample::new(thread, ThreadState::Runnable, stack)
    } else {
        let stack = vec![StackFrame::java(
            ctx.symbols.method("java.lang.Object", "wait"),
        )];
        ThreadSample::new(thread, ThreadState::Waiting, stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use crate::gc::GcConfig;
    use crate::template::build_library;

    fn run_one(app: crate::AppProfile, slow: bool, seed: u64) -> (Episode, Vec<GcEvent>) {
        let mut symbols = SymbolTable::new();
        let mut rng = SimRng::new(seed);
        let lib = build_library(&app, &mut symbols, &mut rng);
        let template = lib
            .iter()
            .find(|t| !t.structure.is_empty())
            .expect("library has structured templates");
        let mut gc = GcModel::new(GcConfig::macbook_2009());
        let pool = NamePool::new(&app.package);
        let mut ctx = ExecContext {
            symbols: &mut symbols,
            gc: &mut gc,
            rng: &mut rng,
            pool: &pool,
            gui_thread: ThreadId::from_raw(0),
            background: app.background,
            sample_period: app.sample_period,
            extra_stack_frames: app.extra_stack_frames,
            tracer_overhead_per_event: DurationNs::ZERO,
        };
        let episode = execute_template(
            template,
            EpisodeId::from_raw(0),
            TimeNs::from_secs(1),
            slow,
            &mut ctx,
        );
        (episode, gc.into_events())
    }

    #[test]
    fn slow_executions_are_perceptible() {
        for seed in 0..20 {
            let (e, _) = run_one(apps::jmol(), true, seed);
            assert!(
                e.duration() >= DurationNs::from_millis(100),
                "{}",
                e.duration()
            );
            assert!(e.tree().validate().is_ok());
        }
    }

    #[test]
    fn fast_executions_are_imperceptible_but_traced() {
        for seed in 0..20 {
            let (e, _) = run_one(apps::jedit(), false, seed);
            assert!(e.duration() < DurationNs::from_millis(100));
            assert!(e.duration() >= DurationNs::from_millis(3));
        }
    }

    #[test]
    fn samples_lie_within_episode_and_have_all_threads() {
        let app = apps::net_beans();
        let expected_threads = 1 + app.background.count as usize;
        let (e, _) = run_one(app, true, 3);
        assert!(!e.samples().is_empty(), "perceptible episode has samples");
        for s in e.samples() {
            assert!(s.time >= e.start() && s.time <= e.end());
            assert_eq!(s.threads.len(), expected_threads);
        }
    }

    #[test]
    fn samples_are_suppressed_during_gc() {
        // Arabeske's explicit System.gc() episodes must have no samples
        // inside the collection.
        let mut found_gc_episode = false;
        for seed in 0..40 {
            let app = apps::arabeske();
            let mut symbols = SymbolTable::new();
            let mut rng = SimRng::new(seed);
            let lib = build_library(&app, &mut symbols, &mut rng);
            let Some(template) = lib.iter().find(|t| t.explicit_major_gc) else {
                continue;
            };
            let mut gc = GcModel::new(GcConfig::macbook_2009());
            let pool = NamePool::new(&app.package);
            let mut ctx = ExecContext {
                symbols: &mut symbols,
                gc: &mut gc,
                rng: &mut rng,
                pool: &pool,
                gui_thread: ThreadId::from_raw(0),
                background: app.background,
                sample_period: app.sample_period,
                extra_stack_frames: app.extra_stack_frames,
                tracer_overhead_per_event: DurationNs::ZERO,
            };
            let episode = execute_template(
                template,
                EpisodeId::from_raw(0),
                TimeNs::ZERO,
                true,
                &mut ctx,
            );
            found_gc_episode = true;
            let events = gc.into_events();
            assert!(!events.is_empty());
            for s in episode.samples() {
                for gc_event in &events {
                    assert!(
                        s.time < gc_event.start || s.time >= gc_event.end,
                        "sample at {} inside GC [{}, {}]",
                        s.time,
                        gc_event.start,
                        gc_event.end
                    );
                }
            }
        }
        assert!(found_gc_episode);
    }

    #[test]
    fn explicit_gc_episode_contains_major_gc_interval() {
        let app = apps::arabeske();
        let mut symbols = SymbolTable::new();
        let mut rng = SimRng::new(1);
        let lib = build_library(&app, &mut symbols, &mut rng);
        let template = lib
            .iter()
            .find(|t| t.explicit_major_gc)
            .expect("Arabeske has System.gc templates");
        let mut gc = GcModel::new(GcConfig::macbook_2009());
        let pool = NamePool::new(&app.package);
        let mut ctx = ExecContext {
            symbols: &mut symbols,
            gc: &mut gc,
            rng: &mut rng,
            pool: &pool,
            gui_thread: ThreadId::from_raw(0),
            background: app.background,
            sample_period: app.sample_period,
            extra_stack_frames: app.extra_stack_frames,
            tracer_overhead_per_event: DurationNs::ZERO,
        };
        let e = execute_template(
            template,
            EpisodeId::from_raw(0),
            TimeNs::ZERO,
            true,
            &mut ctx,
        );
        let tree = e.tree();
        assert!(tree.contains_kind(IntervalKind::Gc));
        let gc_time = tree.outermost_kind_time(IntervalKind::Gc);
        let frac = gc_time.fraction_of(e.duration());
        assert!(frac > 0.5, "gc fraction {frac}");
        assert!(gc.events().iter().any(|ev| ev.major));
    }

    #[test]
    fn allocation_pressure_inserts_minor_gcs() {
        // ArgoUML's allocation rate should produce GC intervals inside long
        // episodes.
        let mut saw_gc = false;
        for seed in 0..30 {
            let (e, events) = run_one(apps::argo_uml(), true, seed);
            if e.tree().contains_kind(IntervalKind::Gc) {
                saw_gc = true;
                assert!(!events.is_empty());
                break;
            }
        }
        assert!(saw_gc, "no GC materialized under allocation pressure");
    }

    #[test]
    fn episode_structure_matches_template() {
        let app = apps::gantt_project();
        let mut symbols = SymbolTable::new();
        let mut rng = SimRng::new(5);
        let lib = build_library(&app, &mut symbols, &mut rng);
        let template = lib
            .iter()
            .filter(|t| !t.structure.is_empty() && t.alloc_rate == 0)
            .max_by_key(|t| t.tree_size())
            .unwrap_or(&lib[0]);
        let mut gc = GcModel::new(GcConfig::macbook_2009());
        let pool = NamePool::new(&app.package);
        let mut ctx = ExecContext {
            symbols: &mut symbols,
            gc: &mut gc,
            rng: &mut rng,
            pool: &pool,
            gui_thread: ThreadId::from_raw(0),
            background: app.background,
            sample_period: app.sample_period,
            extra_stack_frames: app.extra_stack_frames,
            tracer_overhead_per_event: DurationNs::ZERO,
        };
        let e = execute_template(
            template,
            EpisodeId::from_raw(0),
            TimeNs::ZERO,
            true,
            &mut ctx,
        );
        // Without allocation, the tree is exactly the template structure
        // (plus the dispatch root).
        if template.alloc_rate == 0 {
            assert_eq!(e.tree().len(), template.tree_size() + 1);
            assert_eq!(e.tree().max_depth(), template.tree_depth());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, _) = run_one(apps::free_mind(), true, 9);
        let (b, _) = run_one(apps::free_mind(), true, 9);
        assert_eq!(a, b);
    }
}
