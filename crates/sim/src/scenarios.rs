//! Hand-scripted scenarios reproducing the paper's example figures.
//!
//! * [`figure1`] — the episode sketch of Fig 1: a 1705 ms dispatch whose
//!   entire duration is a `JFrame.paint` chain down to `JToolBar.paint`
//!   (1347 ms), with an 843 ms native `sun.java2d.loops.DrawLine` call in
//!   the middle and a 466 ms garbage collection nested inside it. Stack
//!   samples are suppressed for almost the whole native call (the GUI
//!   thread sat at the safe point around the collection).
//! * [`figure2`] — a GanttProject episode with deeply nested recursive
//!   paint intervals (the tree-size/depth outlier of Table III).

use lagalyzer_model::prelude::*;

/// A scripted episode together with the symbol table naming its intervals.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable scenario title.
    pub title: String,
    /// The scripted episode.
    pub episode: Episode,
    /// Symbols referenced by the episode.
    pub symbols: SymbolTable,
}

impl Scenario {
    /// Wraps the scenario into a one-episode session trace (handy for
    /// feeding scenario episodes through the regular analysis pipeline).
    pub fn into_trace(self) -> SessionTrace {
        let end = self.episode.end();
        let meta = SessionMeta {
            application: self.title,
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: end.saturating_since(TimeNs::ZERO) + DurationNs::from_secs(1),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut builder = SessionTraceBuilder::new(meta, self.symbols);
        builder
            .push_episode(self.episode)
            .expect("single episode is trivially ordered");
        builder.finish()
    }
}

fn ms(v: u64) -> TimeNs {
    TimeNs::from_millis(v)
}

/// Builds the Fig 1 episode.
pub fn figure1() -> Scenario {
    let mut symbols = SymbolTable::new();
    let frame_paint = symbols.method("javax.swing.JFrame", "paint");
    let root_paint = symbols.method("javax.swing.JRootPane", "paint");
    let layered_paint = symbols.method("javax.swing.JLayeredPane", "paint");
    let toolbar_paint = symbols.method("javax.swing.JToolBar", "paint");
    let draw_line = symbols.method("sun.java2d.loops.DrawLine", "DrawLine");

    // Durations from the paper: dispatch 1705, JLayeredPane 1533,
    // JToolBar 1347, native DrawLine 843 with a 466 ms GC inside.
    let mut b = IntervalTreeBuilder::new();
    b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
    b.enter(IntervalKind::Paint, Some(frame_paint), ms(5))
        .unwrap();
    b.enter(IntervalKind::Paint, Some(root_paint), ms(60))
        .unwrap();
    b.enter(IntervalKind::Paint, Some(layered_paint), ms(120))
        .unwrap();
    b.enter(IntervalKind::Paint, Some(toolbar_paint), ms(250))
        .unwrap();
    b.enter(IntervalKind::Native, Some(draw_line), ms(560))
        .unwrap();
    b.leaf(IntervalKind::Gc, None, ms(760), ms(1226)).unwrap();
    b.exit(ms(1403)).unwrap(); // DrawLine: 843 ms
    b.exit(ms(1597)).unwrap(); // JToolBar: 1347 ms
    b.exit(ms(1653)).unwrap(); // JLayeredPane: 1533 ms
    b.exit(ms(1680)).unwrap(); // JRootPane
    b.exit(ms(1700)).unwrap(); // JFrame
    b.exit(ms(1705)).unwrap(); // dispatch
    let tree = b.finish().unwrap();

    // Samples every 20 ms, suppressed through almost the entire native
    // call (the paper's observation: the GUI thread was still at the safe
    // point before/after the bracketed collection).
    let suppressed_from = ms(600);
    let suppressed_to = ms(1390);
    let gui = ThreadId::from_raw(0);
    let mut samples = Vec::new();
    let mut t = ms(20);
    while t < ms(1705) {
        if t < suppressed_from || t >= suppressed_to {
            let stack = vec![
                StackFrame::java(toolbar_paint),
                StackFrame::java(layered_paint),
                StackFrame::java(root_paint),
                StackFrame::java(frame_paint),
            ];
            samples.push(SampleSnapshot::new(
                t,
                vec![ThreadSample::new(gui, ThreadState::Runnable, stack)],
            ));
        }
        t += DurationNs::from_millis(20);
    }

    let episode = EpisodeBuilder::new(EpisodeId::from_raw(0), gui)
        .tree(tree)
        .samples(samples)
        .build()
        .unwrap();
    Scenario {
        title: "Figure 1 episode".into(),
        episode,
        symbols,
    }
}

/// Builds the Fig 2 GanttProject episode: a paint request to the main
/// window recursing through a deeply nested component tree.
pub fn figure2() -> Scenario {
    let mut symbols = SymbolTable::new();
    let components = [
        "javax.swing.JFrame",
        "javax.swing.JRootPane",
        "javax.swing.JLayeredPane",
        "javax.swing.JPanel",
        "javax.swing.JSplitPane",
        "javax.swing.JScrollPane",
        "javax.swing.JViewport",
        "net.sourceforge.ganttproject.GanttTree",
        "net.sourceforge.ganttproject.GanttGraphicArea",
        "net.sourceforge.ganttproject.ChartComponent",
        "net.sourceforge.ganttproject.TaskLabel",
        "net.sourceforge.ganttproject.TimeAxis",
    ];
    let paints: Vec<MethodRef> = components
        .iter()
        .map(|c| symbols.method(c, "paint"))
        .collect();

    let total = 520u64;
    let mut b = IntervalTreeBuilder::new();
    b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
    // Nested chain: each level starts a bit later and ends a bit earlier.
    for (i, paint) in paints.iter().enumerate() {
        b.enter(IntervalKind::Paint, Some(*paint), ms(4 + 8 * i as u64))
            .unwrap();
    }
    // A few sibling leaf paints at the deepest level (label rendering).
    let deepest_start = 4 + 8 * (paints.len() as u64 - 1);
    let label = symbols.method("net.sourceforge.ganttproject.TaskLabel", "paintComponent");
    let mut t = deepest_start + 10;
    for _ in 0..4 {
        b.leaf(IntervalKind::Paint, Some(label), ms(t), ms(t + 50))
            .unwrap();
        t += 60;
    }
    for i in (0..paints.len()).rev() {
        // Unwinding: deeper paints end earlier, so exit times increase as
        // the recursion pops back toward the frame.
        b.exit(ms(total - 6 * (i as u64 + 1))).unwrap();
    }
    b.exit(ms(total)).unwrap();
    let tree = b.finish().unwrap();

    let gui = ThreadId::from_raw(0);
    let mut samples = Vec::new();
    let mut ts = ms(10);
    while ts < ms(total) {
        samples.push(SampleSnapshot::new(
            ts,
            vec![ThreadSample::new(
                gui,
                ThreadState::Runnable,
                vec![StackFrame::java(label), StackFrame::java(paints[7])],
            )],
        ));
        ts += DurationNs::from_millis(10);
    }
    let episode = EpisodeBuilder::new(EpisodeId::from_raw(0), gui)
        .tree(tree)
        .samples(samples)
        .build()
        .unwrap();
    Scenario {
        title: "Figure 2 GanttProject episode".into(),
        episode,
        symbols,
    }
}

/// A scripted multi-episode session with a *known injected cause*: a
/// minority of one pattern's episodes carry an artificial slowdown whose
/// mechanism (lock contention, GC storm, slow I/O) is recorded alongside
/// the trace. Tests use this to measure the outlier analyzer's precision
/// and recall against ground truth instead of merely checking it runs.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// Scenario name (doubles as the trace's application name).
    pub title: &'static str,
    /// The session trace containing the injected episodes.
    pub trace: SessionTrace,
    /// Ids of the episodes that received the injected cause.
    pub injected: Vec<EpisodeId>,
    /// The stable cause code (`lagalyzer-core` `CauseCode::code()`) the
    /// analyzer is expected to name for every injected episode.
    pub expected_cause: &'static str,
}

/// All injected-cause scenarios, in a fixed order.
pub fn ground_truths() -> Vec<GroundTruth> {
    vec![lock_contention(), gc_storm(), slow_io()]
}

/// Which main-pattern episodes receive the injected cause.
const INJECTED: [u32; 4] = [5, 11, 17, 23];
/// Main-pattern episode count (the injected ones are a minority).
const MAIN_EPISODES: u32 = 28;
/// Homogeneous control-pattern episode count (must never be flagged).
const CONTROL_EPISODES: u32 = 8;

/// Start of episode `i` — episodes are spaced far apart so ordering and
/// time-window filters stay trivial.
fn episode_start(i: u32) -> TimeNs {
    ms(u64::from(i) * 2_000)
}

/// Normal (uninjected) duration of main-pattern episode `i`: ~50 ms with
/// deterministic jitter, well inside the detector's quiet band.
fn normal_ms(i: u32) -> u64 {
    50 + u64::from(i % 7)
}

/// Injected duration of main-pattern episode `i`: ~10x the normal band.
fn injected_ms(i: u32) -> u64 {
    500 + u64::from(i % 5) * 8
}

/// Wraps scripted episodes into a session trace.
fn ground_truth_trace(
    title: &'static str,
    symbols: SymbolTable,
    episodes: Vec<Episode>,
) -> SessionTrace {
    let end = episodes.last().map_or(TimeNs::ZERO, Episode::end);
    let meta = SessionMeta {
        application: title.into(),
        session: SessionId::from_raw(0),
        gui_thread: ThreadId::from_raw(0),
        end_to_end: end.saturating_since(TimeNs::ZERO) + DurationNs::from_secs(1),
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut builder = SessionTraceBuilder::new(meta, symbols);
    for e in episodes {
        builder
            .push_episode(e)
            .expect("scripted episodes are ordered");
    }
    builder.finish()
}

/// Appends the homogeneous control pattern: identical 30 ms paint
/// episodes that a correct detector must leave unflagged.
fn push_control_episodes(symbols: &mut SymbolTable, episodes: &mut Vec<Episode>) {
    let paint = symbols.method("javax.swing.JPanel", "paint");
    let gui = ThreadId::from_raw(0);
    for j in 0..CONTROL_EPISODES {
        let id = MAIN_EPISODES + j;
        let s = episode_start(id);
        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, s).unwrap();
        b.leaf(
            IntervalKind::Paint,
            Some(paint),
            s + DurationNs::from_millis(2),
            s + DurationNs::from_millis(28),
        )
        .unwrap();
        b.exit(s + DurationNs::from_millis(30)).unwrap();
        episodes.push(
            EpisodeBuilder::new(EpisodeId::from_raw(id), gui)
                .tree(b.finish().unwrap())
                .sample(SampleSnapshot::new(
                    s + DurationNs::from_millis(10),
                    vec![ThreadSample::new(
                        gui,
                        ThreadState::Runnable,
                        vec![StackFrame::java(paint)],
                    )],
                ))
                .build()
                .unwrap(),
        );
    }
}

/// Injects lock contention: in the injected episodes the GUI thread is
/// sampled `Blocked` for the whole handler while background thread `t7`
/// keeps running `com.app.CacheLock.rebuild` — the wait-edge culprit the
/// analyzer must name. Expected cause: `OC-LOCK`.
pub fn lock_contention() -> GroundTruth {
    let mut symbols = SymbolTable::new();
    let action = symbols.method("com.app.ui.RefreshAction", "actionPerformed");
    let rebuild = symbols.method("com.app.CacheLock", "rebuild");
    let idle = symbols.method("java.lang.Object", "wait");
    let gui = ThreadId::from_raw(0);
    let bg = ThreadId::from_raw(7);

    let mut episodes = Vec::new();
    for i in 0..MAIN_EPISODES {
        let injected = INJECTED.contains(&i);
        let s = episode_start(i);
        let dur = if injected {
            injected_ms(i)
        } else {
            normal_ms(i)
        };
        let end = s + DurationNs::from_millis(dur);

        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, s).unwrap();
        b.leaf(
            IntervalKind::Listener,
            Some(action),
            s + DurationNs::from_millis(2),
            s + DurationNs::from_millis(dur - 2),
        )
        .unwrap();
        b.exit(end).unwrap();

        let mut samples = Vec::new();
        let mut t = s + DurationNs::from_millis(5);
        while t < end {
            let threads = if injected {
                vec![
                    ThreadSample::new(gui, ThreadState::Blocked, vec![StackFrame::java(action)]),
                    ThreadSample::new(bg, ThreadState::Runnable, vec![StackFrame::java(rebuild)]),
                ]
            } else {
                vec![
                    ThreadSample::new(gui, ThreadState::Runnable, vec![StackFrame::java(action)]),
                    ThreadSample::new(bg, ThreadState::Waiting, vec![StackFrame::java(idle)]),
                ]
            };
            samples.push(SampleSnapshot::new(t, threads));
            t += DurationNs::from_millis(10);
        }

        episodes.push(
            EpisodeBuilder::new(EpisodeId::from_raw(i), gui)
                .tree(b.finish().unwrap())
                .samples(samples)
                .build()
                .unwrap(),
        );
    }
    push_control_episodes(&mut symbols, &mut episodes);
    GroundTruth {
        title: "lock-contention",
        trace: ground_truth_trace("lock-contention", symbols, episodes),
        injected: INJECTED.iter().map(|&i| EpisodeId::from_raw(i)).collect(),
        expected_cause: "OC-LOCK",
    }
}

/// Injects a GC storm: the injected episodes carry two long stop-the-world
/// collections inside the handler (samples suppressed during the GC
/// windows, as JVMTI would). GC nodes are excluded from shape signatures,
/// so injected episodes stay in the same pattern. Expected cause: `OC-GC`.
pub fn gc_storm() -> GroundTruth {
    let mut symbols = SymbolTable::new();
    let recalc = symbols.method("com.app.model.Recalc", "run");
    let gui = ThreadId::from_raw(0);

    let mut episodes = Vec::new();
    for i in 0..MAIN_EPISODES {
        let injected = INJECTED.contains(&i);
        let s = episode_start(i);
        let dur = if injected {
            injected_ms(i)
        } else {
            normal_ms(i)
        };
        let end = s + DurationNs::from_millis(dur);

        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, s).unwrap();
        b.enter(
            IntervalKind::Listener,
            Some(recalc),
            s + DurationNs::from_millis(2),
        )
        .unwrap();
        let mut gc_windows: Vec<(TimeNs, TimeNs)> = Vec::new();
        if injected {
            gc_windows.push((
                s + DurationNs::from_millis(60),
                s + DurationNs::from_millis(260),
            ));
            gc_windows.push((
                s + DurationNs::from_millis(280),
                s + DurationNs::from_millis(dur - 40),
            ));
            for &(gs, ge) in &gc_windows {
                b.leaf(IntervalKind::Gc, None, gs, ge).unwrap();
            }
        }
        b.exit(s + DurationNs::from_millis(dur - 2)).unwrap();
        b.exit(end).unwrap();

        let mut samples = Vec::new();
        let mut t = s + DurationNs::from_millis(5);
        while t < end {
            let in_gc = gc_windows.iter().any(|&(gs, ge)| t >= gs && t < ge);
            if !in_gc {
                samples.push(SampleSnapshot::new(
                    t,
                    vec![ThreadSample::new(
                        gui,
                        ThreadState::Runnable,
                        vec![StackFrame::java(recalc)],
                    )],
                ));
            }
            t += DurationNs::from_millis(10);
        }

        episodes.push(
            EpisodeBuilder::new(EpisodeId::from_raw(i), gui)
                .tree(b.finish().unwrap())
                .samples(samples)
                .build()
                .unwrap(),
        );
    }
    push_control_episodes(&mut symbols, &mut episodes);
    GroundTruth {
        title: "gc-storm",
        trace: ground_truth_trace("gc-storm", symbols, episodes),
        injected: INJECTED.iter().map(|&i| EpisodeId::from_raw(i)).collect(),
        expected_cause: "OC-GC",
    }
}

/// Injects slow I/O: *every* episode of the pattern reads through a native
/// `java.io.FileInputStream.readBytes` call (so the shape signature is
/// identical), but in the injected episodes the read takes ~440 ms instead
/// of ~2 ms. Expected cause: `OC-IO`.
pub fn slow_io() -> GroundTruth {
    let mut symbols = SymbolTable::new();
    let load = symbols.method("com.app.io.Loader", "load");
    let read = symbols.method("java.io.FileInputStream", "readBytes");
    let gui = ThreadId::from_raw(0);

    let mut episodes = Vec::new();
    for i in 0..MAIN_EPISODES {
        let injected = INJECTED.contains(&i);
        let s = episode_start(i);
        let dur = if injected {
            injected_ms(i)
        } else {
            normal_ms(i)
        };
        let end = s + DurationNs::from_millis(dur);
        let read_ms = if injected { dur - 60 } else { 2 };

        let mut b = IntervalTreeBuilder::new();
        b.enter(IntervalKind::Dispatch, None, s).unwrap();
        b.enter(
            IntervalKind::Listener,
            Some(load),
            s + DurationNs::from_millis(2),
        )
        .unwrap();
        b.leaf(
            IntervalKind::Native,
            Some(read),
            s + DurationNs::from_millis(10),
            s + DurationNs::from_millis(10 + read_ms),
        )
        .unwrap();
        b.exit(s + DurationNs::from_millis(dur - 2)).unwrap();
        b.exit(end).unwrap();

        let mut samples = Vec::new();
        let mut t = s + DurationNs::from_millis(5);
        while t < end {
            let in_read = t >= s + DurationNs::from_millis(10)
                && t < s + DurationNs::from_millis(10 + read_ms);
            let stack = if in_read {
                vec![StackFrame::native(read), StackFrame::java(load)]
            } else {
                vec![StackFrame::java(load)]
            };
            samples.push(SampleSnapshot::new(
                t,
                vec![ThreadSample::new(gui, ThreadState::Runnable, stack)],
            ));
            t += DurationNs::from_millis(10);
        }

        episodes.push(
            EpisodeBuilder::new(EpisodeId::from_raw(i), gui)
                .tree(b.finish().unwrap())
                .samples(samples)
                .build()
                .unwrap(),
        );
    }
    push_control_episodes(&mut symbols, &mut episodes);
    GroundTruth {
        title: "slow-io",
        trace: ground_truth_trace("slow-io", symbols, episodes),
        injected: INJECTED.iter().map(|&i| EpisodeId::from_raw(i)).collect(),
        expected_cause: "OC-IO",
    }
}

/// A scripted session with a *known injected concurrency hazard* for
/// validating the `LA020`… hazard rules: a minority of episodes carry a
/// deliberate lock-order inversion or a lock held across IO, recorded
/// alongside the lock identities and culprit threads the analyzer must
/// name. The control scenario has heavy but consistent-order contention
/// and must stay hazard-free.
#[derive(Clone, Debug)]
pub struct HazardTruth {
    /// Scenario name (doubles as the trace's application name).
    pub title: &'static str,
    /// The session trace containing the injected episodes.
    pub trace: SessionTrace,
    /// Ids of the episodes that received the injected hazard.
    pub injected: Vec<EpisodeId>,
    /// The hazard code expected for the injection, `None` for the
    /// hazard-free control.
    pub expected_code: Option<&'static str>,
    /// Rendered lock identities (`class.method`) the finding must name.
    pub locks: Vec<&'static str>,
    /// Culprit thread names (`t0`…) the finding must name.
    pub culprits: Vec<&'static str>,
}

/// All injected-hazard scenarios, in a fixed order. Deliberately a
/// separate accessor from [`ground_truths`]: the committed golden
/// corpus fixtures serialize `ground_truths()` byte-for-byte, so new
/// scenarios must never change that list.
pub fn hazard_truths() -> Vec<HazardTruth> {
    vec![abba_inversion(), held_lock_io(), hazard_control()]
}

/// Interns the two ordered locks every hazard scenario contends on.
fn hazard_locks(symbols: &mut SymbolTable) -> (MethodRef, MethodRef) {
    (
        symbols.method("com.app.sync.OrderA", "enter"),
        symbols.method("com.app.sync.OrderB", "enter"),
    )
}

/// Builds one hazard-scenario episode: a dispatch+listener tree with
/// one snapshot every 10 ms produced by `snapshot(t)`.
fn hazard_episode(
    id: u32,
    action: MethodRef,
    dur: u64,
    snapshot: impl Fn(TimeNs) -> Vec<ThreadSample>,
) -> Episode {
    let s = episode_start(id);
    let end = s + DurationNs::from_millis(dur);
    let mut b = IntervalTreeBuilder::new();
    b.enter(IntervalKind::Dispatch, None, s).unwrap();
    b.leaf(
        IntervalKind::Listener,
        Some(action),
        s + DurationNs::from_millis(2),
        s + DurationNs::from_millis(dur - 2),
    )
    .unwrap();
    b.exit(end).unwrap();
    let mut samples = Vec::new();
    let mut t = s + DurationNs::from_millis(5);
    while t < end {
        samples.push(SampleSnapshot::new(t, snapshot(t)));
        t += DurationNs::from_millis(10);
    }
    EpisodeBuilder::new(EpisodeId::from_raw(id), ThreadId::from_raw(0))
        .tree(b.finish().unwrap())
        .samples(samples)
        .build()
        .unwrap()
}

/// Injects an ABBA lock-order inversion: in the injected episodes the
/// GUI thread blocks acquiring `OrderB` while holding `OrderA`, and
/// worker `t7` blocks acquiring `OrderA` while holding `OrderB` — the
/// held-while-acquiring cycle `LA020` must report with both lock
/// identities and both culprit threads.
pub fn abba_inversion() -> HazardTruth {
    let mut symbols = SymbolTable::new();
    let (a, b) = hazard_locks(&mut symbols);
    let action = symbols.method("com.app.ui.RefreshAction", "actionPerformed");
    let worker = symbols.method("com.app.Worker", "run");
    let idle = symbols.method("java.lang.Object", "wait");
    let gui = ThreadId::from_raw(0);
    let bg = ThreadId::from_raw(7);

    let mut episodes = Vec::new();
    for i in 0..MAIN_EPISODES {
        let injected = INJECTED.contains(&i);
        let dur = if injected {
            injected_ms(i)
        } else {
            normal_ms(i)
        };
        episodes.push(hazard_episode(i, action, dur, |_| {
            if injected {
                vec![
                    ThreadSample::new(
                        gui,
                        ThreadState::Blocked,
                        vec![
                            StackFrame::java(b),
                            StackFrame::java(a),
                            StackFrame::java(action),
                        ],
                    ),
                    ThreadSample::new(
                        bg,
                        ThreadState::Blocked,
                        vec![
                            StackFrame::java(a),
                            StackFrame::java(b),
                            StackFrame::java(worker),
                        ],
                    ),
                ]
            } else {
                vec![
                    ThreadSample::new(gui, ThreadState::Runnable, vec![StackFrame::java(action)]),
                    ThreadSample::new(bg, ThreadState::Waiting, vec![StackFrame::java(idle)]),
                ]
            }
        }));
    }
    push_control_episodes(&mut symbols, &mut episodes);
    HazardTruth {
        title: "abba-inversion",
        trace: ground_truth_trace("abba-inversion", symbols, episodes),
        injected: INJECTED.iter().map(|&i| EpisodeId::from_raw(i)).collect(),
        expected_code: Some("LA020"),
        locks: vec!["com.app.sync.OrderA.enter", "com.app.sync.OrderB.enter"],
        culprits: vec!["t0", "t7"],
    }
}

/// Injects a lock held across IO: in the injected episodes the GUI
/// thread blocks entering `OrderA` while worker `t9` — the inferred
/// holder — keeps running `java.io.RandomAccessFile.readBytes`. `LA021`
/// must name the lock, the holder, and the IO frame.
pub fn held_lock_io() -> HazardTruth {
    let mut symbols = SymbolTable::new();
    let (a, _) = hazard_locks(&mut symbols);
    let action = symbols.method("com.app.ui.SaveAction", "actionPerformed");
    let read = symbols.method("java.io.RandomAccessFile", "readBytes");
    let idle = symbols.method("java.lang.Object", "wait");
    let gui = ThreadId::from_raw(0);
    let bg = ThreadId::from_raw(9);

    let mut episodes = Vec::new();
    for i in 0..MAIN_EPISODES {
        let injected = INJECTED.contains(&i);
        let dur = if injected {
            injected_ms(i)
        } else {
            normal_ms(i)
        };
        episodes.push(hazard_episode(i, action, dur, |_| {
            if injected {
                vec![
                    ThreadSample::new(
                        gui,
                        ThreadState::Blocked,
                        vec![StackFrame::java(a), StackFrame::java(action)],
                    ),
                    ThreadSample::new(bg, ThreadState::Runnable, vec![StackFrame::native(read)]),
                ]
            } else {
                vec![
                    ThreadSample::new(gui, ThreadState::Runnable, vec![StackFrame::java(action)]),
                    ThreadSample::new(bg, ThreadState::Waiting, vec![StackFrame::java(idle)]),
                ]
            }
        }));
    }
    push_control_episodes(&mut symbols, &mut episodes);
    HazardTruth {
        title: "held-lock-io",
        trace: ground_truth_trace("held-lock-io", symbols, episodes),
        injected: INJECTED.iter().map(|&i| EpisodeId::from_raw(i)).collect(),
        expected_code: Some("LA021"),
        locks: vec!["com.app.sync.OrderA.enter"],
        culprits: vec!["t9"],
    }
}

/// The hazard-free control: the same heavy contention on the same two
/// locks, but every thread acquires them in the *same* order, the
/// holder never sleeps or does IO, and the lock never changes hands —
/// a correct analyzer reports no hazard at all.
pub fn hazard_control() -> HazardTruth {
    let mut symbols = SymbolTable::new();
    let (a, b) = hazard_locks(&mut symbols);
    let action = symbols.method("com.app.ui.RefreshAction", "actionPerformed");
    let rebuild = symbols.method("com.app.CacheLock", "rebuild");
    let idle = symbols.method("java.lang.Object", "wait");
    let gui = ThreadId::from_raw(0);
    let bg = ThreadId::from_raw(7);

    let mut episodes = Vec::new();
    for i in 0..MAIN_EPISODES {
        let contended = INJECTED.contains(&i);
        let dur = if contended {
            injected_ms(i)
        } else {
            normal_ms(i)
        };
        episodes.push(hazard_episode(i, action, dur, |_| {
            if contended {
                // Both threads acquire B while holding A: consistent
                // order, so the graph stays acyclic.
                vec![
                    ThreadSample::new(
                        gui,
                        ThreadState::Blocked,
                        vec![
                            StackFrame::java(b),
                            StackFrame::java(a),
                            StackFrame::java(action),
                        ],
                    ),
                    ThreadSample::new(bg, ThreadState::Runnable, vec![StackFrame::java(rebuild)]),
                ]
            } else {
                vec![
                    ThreadSample::new(gui, ThreadState::Runnable, vec![StackFrame::java(action)]),
                    ThreadSample::new(bg, ThreadState::Waiting, vec![StackFrame::java(idle)]),
                ]
            }
        }));
    }
    push_control_episodes(&mut symbols, &mut episodes);
    HazardTruth {
        title: "hazard-control",
        trace: ground_truth_trace("hazard-control", symbols, episodes),
        injected: Vec::new(),
        expected_code: None,
        locks: vec![],
        culprits: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_paper_numbers() {
        let s = figure1();
        let tree = s.episode.tree();
        assert_eq!(s.episode.duration(), DurationNs::from_millis(1705));
        // Walk down: dispatch -> JFrame -> ... -> native -> GC.
        let kinds: Vec<IntervalKind> = tree.pre_order().map(|id| tree.interval(id).kind).collect();
        assert_eq!(
            kinds,
            vec![
                IntervalKind::Dispatch,
                IntervalKind::Paint,
                IntervalKind::Paint,
                IntervalKind::Paint,
                IntervalKind::Paint,
                IntervalKind::Native,
                IntervalKind::Gc,
            ]
        );
        let native = tree
            .pre_order()
            .find(|&id| tree.interval(id).kind == IntervalKind::Native)
            .unwrap();
        assert_eq!(
            tree.interval(native).duration(),
            DurationNs::from_millis(843)
        );
        let gc = tree
            .pre_order()
            .find(|&id| tree.interval(id).kind == IntervalKind::Gc)
            .unwrap();
        assert_eq!(tree.interval(gc).duration(), DurationNs::from_millis(466));
    }

    #[test]
    fn figure1_samples_suppressed_around_gc() {
        let s = figure1();
        let gc_window = (ms(760), ms(1226));
        for sample in s.episode.samples() {
            assert!(
                sample.time < gc_window.0 || sample.time >= gc_window.1,
                "sample at {} inside GC",
                sample.time
            );
        }
        // Samples exist before and after the suppression window.
        assert!(s.episode.samples().iter().any(|x| x.time < ms(600)));
        assert!(s.episode.samples().iter().any(|x| x.time >= ms(1390)));
    }

    #[test]
    fn figure1_symbols_name_the_drawline() {
        let s = figure1();
        let tree = s.episode.tree();
        let native = tree
            .pre_order()
            .find(|&id| tree.interval(id).kind == IntervalKind::Native)
            .unwrap();
        let sym = tree.interval(native).symbol.unwrap();
        assert_eq!(s.symbols.render(sym), "sun.java2d.loops.DrawLine.DrawLine");
    }

    #[test]
    fn figure2_is_deep_and_painty() {
        let s = figure2();
        let tree = s.episode.tree();
        assert!(tree.max_depth() >= 12, "depth {}", tree.max_depth());
        assert!(tree.len() >= 16, "size {}", tree.len());
        let paints = tree
            .pre_order()
            .filter(|&id| tree.interval(id).kind == IntervalKind::Paint)
            .count();
        assert!(paints >= 15);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn ground_truths_are_well_formed() {
        for gt in ground_truths() {
            let episodes = gt.trace.episodes();
            assert_eq!(
                episodes.len() as u32,
                MAIN_EPISODES + CONTROL_EPISODES,
                "{}",
                gt.title
            );
            // Injected episodes are a strict minority of the main pattern
            // and exist in the trace.
            assert!(gt.injected.len() * 4 <= MAIN_EPISODES as usize);
            for id in &gt.injected {
                let e = episodes.iter().find(|e| e.id() == *id).unwrap();
                assert!(
                    e.duration() >= DurationNs::from_millis(400),
                    "{}: injected episode {} too short",
                    gt.title,
                    id
                );
            }
            // Uninjected main-pattern episodes stay in the quiet band.
            for e in episodes {
                let injected = gt.injected.contains(&e.id());
                if !injected && e.id().as_raw() < MAIN_EPISODES {
                    assert!(e.duration() < DurationNs::from_millis(60));
                }
                assert!(e.tree().validate().is_ok());
            }
            assert!(!gt.expected_cause.is_empty());
        }
    }

    #[test]
    fn gc_storm_suppresses_samples_inside_collections() {
        let gt = gc_storm();
        for id in &gt.injected {
            let e = gt.trace.episodes().iter().find(|e| e.id() == *id).unwrap();
            let gc_windows: Vec<(TimeNs, TimeNs)> = e
                .tree()
                .pre_order()
                .filter(|&n| e.tree().interval(n).kind == IntervalKind::Gc)
                .map(|n| {
                    let iv = e.tree().interval(n);
                    (iv.start, iv.end)
                })
                .collect();
            assert_eq!(gc_windows.len(), 2);
            for snap in e.samples() {
                for &(gs, ge) in &gc_windows {
                    assert!(snap.time < gs || snap.time >= ge);
                }
            }
        }
    }

    #[test]
    fn scenarios_convert_to_traces() {
        for scenario in [figure1(), figure2()] {
            let trace = scenario.into_trace();
            assert_eq!(trace.episodes().len(), 1);
            assert!(trace.meta().end_to_end >= trace.episodes()[0].duration());
        }
    }
}
