//! Hand-scripted scenarios reproducing the paper's example figures.
//!
//! * [`figure1`] — the episode sketch of Fig 1: a 1705 ms dispatch whose
//!   entire duration is a `JFrame.paint` chain down to `JToolBar.paint`
//!   (1347 ms), with an 843 ms native `sun.java2d.loops.DrawLine` call in
//!   the middle and a 466 ms garbage collection nested inside it. Stack
//!   samples are suppressed for almost the whole native call (the GUI
//!   thread sat at the safe point around the collection).
//! * [`figure2`] — a GanttProject episode with deeply nested recursive
//!   paint intervals (the tree-size/depth outlier of Table III).

use lagalyzer_model::prelude::*;

/// A scripted episode together with the symbol table naming its intervals.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable scenario title.
    pub title: String,
    /// The scripted episode.
    pub episode: Episode,
    /// Symbols referenced by the episode.
    pub symbols: SymbolTable,
}

impl Scenario {
    /// Wraps the scenario into a one-episode session trace (handy for
    /// feeding scenario episodes through the regular analysis pipeline).
    pub fn into_trace(self) -> SessionTrace {
        let end = self.episode.end();
        let meta = SessionMeta {
            application: self.title,
            session: SessionId::from_raw(0),
            gui_thread: ThreadId::from_raw(0),
            end_to_end: end.saturating_since(TimeNs::ZERO) + DurationNs::from_secs(1),
            filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
        };
        let mut builder = SessionTraceBuilder::new(meta, self.symbols);
        builder
            .push_episode(self.episode)
            .expect("single episode is trivially ordered");
        builder.finish()
    }
}

fn ms(v: u64) -> TimeNs {
    TimeNs::from_millis(v)
}

/// Builds the Fig 1 episode.
pub fn figure1() -> Scenario {
    let mut symbols = SymbolTable::new();
    let frame_paint = symbols.method("javax.swing.JFrame", "paint");
    let root_paint = symbols.method("javax.swing.JRootPane", "paint");
    let layered_paint = symbols.method("javax.swing.JLayeredPane", "paint");
    let toolbar_paint = symbols.method("javax.swing.JToolBar", "paint");
    let draw_line = symbols.method("sun.java2d.loops.DrawLine", "DrawLine");

    // Durations from the paper: dispatch 1705, JLayeredPane 1533,
    // JToolBar 1347, native DrawLine 843 with a 466 ms GC inside.
    let mut b = IntervalTreeBuilder::new();
    b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
    b.enter(IntervalKind::Paint, Some(frame_paint), ms(5))
        .unwrap();
    b.enter(IntervalKind::Paint, Some(root_paint), ms(60))
        .unwrap();
    b.enter(IntervalKind::Paint, Some(layered_paint), ms(120))
        .unwrap();
    b.enter(IntervalKind::Paint, Some(toolbar_paint), ms(250))
        .unwrap();
    b.enter(IntervalKind::Native, Some(draw_line), ms(560))
        .unwrap();
    b.leaf(IntervalKind::Gc, None, ms(760), ms(1226)).unwrap();
    b.exit(ms(1403)).unwrap(); // DrawLine: 843 ms
    b.exit(ms(1597)).unwrap(); // JToolBar: 1347 ms
    b.exit(ms(1653)).unwrap(); // JLayeredPane: 1533 ms
    b.exit(ms(1680)).unwrap(); // JRootPane
    b.exit(ms(1700)).unwrap(); // JFrame
    b.exit(ms(1705)).unwrap(); // dispatch
    let tree = b.finish().unwrap();

    // Samples every 20 ms, suppressed through almost the entire native
    // call (the paper's observation: the GUI thread was still at the safe
    // point before/after the bracketed collection).
    let suppressed_from = ms(600);
    let suppressed_to = ms(1390);
    let gui = ThreadId::from_raw(0);
    let mut samples = Vec::new();
    let mut t = ms(20);
    while t < ms(1705) {
        if t < suppressed_from || t >= suppressed_to {
            let stack = vec![
                StackFrame::java(toolbar_paint),
                StackFrame::java(layered_paint),
                StackFrame::java(root_paint),
                StackFrame::java(frame_paint),
            ];
            samples.push(SampleSnapshot::new(
                t,
                vec![ThreadSample::new(gui, ThreadState::Runnable, stack)],
            ));
        }
        t += DurationNs::from_millis(20);
    }

    let episode = EpisodeBuilder::new(EpisodeId::from_raw(0), gui)
        .tree(tree)
        .samples(samples)
        .build()
        .unwrap();
    Scenario {
        title: "Figure 1 episode".into(),
        episode,
        symbols,
    }
}

/// Builds the Fig 2 GanttProject episode: a paint request to the main
/// window recursing through a deeply nested component tree.
pub fn figure2() -> Scenario {
    let mut symbols = SymbolTable::new();
    let components = [
        "javax.swing.JFrame",
        "javax.swing.JRootPane",
        "javax.swing.JLayeredPane",
        "javax.swing.JPanel",
        "javax.swing.JSplitPane",
        "javax.swing.JScrollPane",
        "javax.swing.JViewport",
        "net.sourceforge.ganttproject.GanttTree",
        "net.sourceforge.ganttproject.GanttGraphicArea",
        "net.sourceforge.ganttproject.ChartComponent",
        "net.sourceforge.ganttproject.TaskLabel",
        "net.sourceforge.ganttproject.TimeAxis",
    ];
    let paints: Vec<MethodRef> = components
        .iter()
        .map(|c| symbols.method(c, "paint"))
        .collect();

    let total = 520u64;
    let mut b = IntervalTreeBuilder::new();
    b.enter(IntervalKind::Dispatch, None, ms(0)).unwrap();
    // Nested chain: each level starts a bit later and ends a bit earlier.
    for (i, paint) in paints.iter().enumerate() {
        b.enter(IntervalKind::Paint, Some(*paint), ms(4 + 8 * i as u64))
            .unwrap();
    }
    // A few sibling leaf paints at the deepest level (label rendering).
    let deepest_start = 4 + 8 * (paints.len() as u64 - 1);
    let label = symbols.method("net.sourceforge.ganttproject.TaskLabel", "paintComponent");
    let mut t = deepest_start + 10;
    for _ in 0..4 {
        b.leaf(IntervalKind::Paint, Some(label), ms(t), ms(t + 50))
            .unwrap();
        t += 60;
    }
    for i in (0..paints.len()).rev() {
        // Unwinding: deeper paints end earlier, so exit times increase as
        // the recursion pops back toward the frame.
        b.exit(ms(total - 6 * (i as u64 + 1))).unwrap();
    }
    b.exit(ms(total)).unwrap();
    let tree = b.finish().unwrap();

    let gui = ThreadId::from_raw(0);
    let mut samples = Vec::new();
    let mut ts = ms(10);
    while ts < ms(total) {
        samples.push(SampleSnapshot::new(
            ts,
            vec![ThreadSample::new(
                gui,
                ThreadState::Runnable,
                vec![StackFrame::java(label), StackFrame::java(paints[7])],
            )],
        ));
        ts += DurationNs::from_millis(10);
    }
    let episode = EpisodeBuilder::new(EpisodeId::from_raw(0), gui)
        .tree(tree)
        .samples(samples)
        .build()
        .unwrap();
    Scenario {
        title: "Figure 2 GanttProject episode".into(),
        episode,
        symbols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_paper_numbers() {
        let s = figure1();
        let tree = s.episode.tree();
        assert_eq!(s.episode.duration(), DurationNs::from_millis(1705));
        // Walk down: dispatch -> JFrame -> ... -> native -> GC.
        let kinds: Vec<IntervalKind> = tree.pre_order().map(|id| tree.interval(id).kind).collect();
        assert_eq!(
            kinds,
            vec![
                IntervalKind::Dispatch,
                IntervalKind::Paint,
                IntervalKind::Paint,
                IntervalKind::Paint,
                IntervalKind::Paint,
                IntervalKind::Native,
                IntervalKind::Gc,
            ]
        );
        let native = tree
            .pre_order()
            .find(|&id| tree.interval(id).kind == IntervalKind::Native)
            .unwrap();
        assert_eq!(
            tree.interval(native).duration(),
            DurationNs::from_millis(843)
        );
        let gc = tree
            .pre_order()
            .find(|&id| tree.interval(id).kind == IntervalKind::Gc)
            .unwrap();
        assert_eq!(tree.interval(gc).duration(), DurationNs::from_millis(466));
    }

    #[test]
    fn figure1_samples_suppressed_around_gc() {
        let s = figure1();
        let gc_window = (ms(760), ms(1226));
        for sample in s.episode.samples() {
            assert!(
                sample.time < gc_window.0 || sample.time >= gc_window.1,
                "sample at {} inside GC",
                sample.time
            );
        }
        // Samples exist before and after the suppression window.
        assert!(s.episode.samples().iter().any(|x| x.time < ms(600)));
        assert!(s.episode.samples().iter().any(|x| x.time >= ms(1390)));
    }

    #[test]
    fn figure1_symbols_name_the_drawline() {
        let s = figure1();
        let tree = s.episode.tree();
        let native = tree
            .pre_order()
            .find(|&id| tree.interval(id).kind == IntervalKind::Native)
            .unwrap();
        let sym = tree.interval(native).symbol.unwrap();
        assert_eq!(s.symbols.render(sym), "sun.java2d.loops.DrawLine.DrawLine");
    }

    #[test]
    fn figure2_is_deep_and_painty() {
        let s = figure2();
        let tree = s.episode.tree();
        assert!(tree.max_depth() >= 12, "depth {}", tree.max_depth());
        assert!(tree.len() >= 16, "size {}", tree.len());
        let paints = tree
            .pre_order()
            .filter(|&id| tree.interval(id).kind == IntervalKind::Paint)
            .count();
        assert!(paints >= 15);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn scenarios_convert_to_traces() {
        for scenario in [figure1(), figure2()] {
            let trace = scenario.into_trace();
            assert_eq!(trace.episodes().len(), 1);
            assert!(trace.meta().end_to_end >= trace.episodes()[0].duration());
        }
    }
}
