//! Episode templates — the pattern library of a simulated application.
//!
//! Real GUI applications handle the same kinds of requests again and again,
//! which is why LagAlyzer's pattern mining condenses thousands of episodes
//! into a few hundred patterns. The simulator builds that redundancy in
//! explicitly: each application owns a library of [`EpisodeTemplate`]s, and
//! every traced episode is an execution of one template with freshly drawn
//! timing. Templates therefore map one-to-one onto the patterns the
//! analyses should rediscover.

use lagalyzer_model::{IntervalKind, MethodRef, SymbolTable};

use crate::names::NamePool;
use crate::profile::AppProfile;
use crate::rng::{apportion, zipf_weights, SimRng};

/// What triggers episodes of a template (generation-side ground truth for
/// the paper's Fig 5 classification).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TriggerClass {
    /// A listener handling user input.
    Input,
    /// A paint request producing output.
    Output,
    /// A background-thread notification.
    Asynchronous,
    /// Nothing above the tracer filter.
    Unspecified,
}

impl TriggerClass {
    /// All classes in Fig 5 order.
    pub const ALL: [TriggerClass; 4] = [
        TriggerClass::Input,
        TriggerClass::Output,
        TriggerClass::Asynchronous,
        TriggerClass::Unspecified,
    ];
}

/// How often episodes of a template are perceptibly slow (generation-side
/// ground truth for the paper's Fig 4 classes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OccurrenceClass {
    /// Every episode is perceptible.
    Always,
    /// A fraction of episodes is perceptible.
    Sometimes,
    /// Only the first episode is perceptible (initialization effects).
    Once,
    /// No episode is perceptible.
    Never,
}

/// One node of a template's tree structure. Children occupy consecutive
/// sub-spans of their parent; `span` is the fraction of the parent's
/// duration this node covers.
#[derive(Clone, Debug)]
pub struct ScriptNode {
    /// Interval type this node materializes as.
    pub kind: IntervalKind,
    /// Symbolic information attached to the interval.
    pub symbol: Option<MethodRef>,
    /// Fraction of the parent's duration (0, 1].
    pub span: f64,
    /// Child nodes, executed in order within this node's span.
    pub children: Vec<ScriptNode>,
}

impl ScriptNode {
    /// A leaf node.
    pub fn leaf(kind: IntervalKind, symbol: Option<MethodRef>, span: f64) -> Self {
        ScriptNode {
            kind,
            symbol,
            span,
            children: Vec::new(),
        }
    }

    /// Number of nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ScriptNode::size).sum::<usize>()
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> u32 {
        1 + self
            .children
            .iter()
            .map(ScriptNode::depth)
            .max()
            .unwrap_or(0)
    }
}

/// How the GUI thread behaves while episodes of a template execute —
/// drives sampled thread states (Fig 8) and stack origins (Fig 6).
#[derive(Clone, Copy, Debug)]
pub struct GuiBehavior {
    /// Per-sample probability of the blocked state.
    pub blocked: f64,
    /// Per-sample probability of the waiting state.
    pub waiting: f64,
    /// Per-sample probability of the sleeping state (Apple combo-box
    /// blink).
    pub sleeping: f64,
    /// Probability that a runnable sample's top frame is runtime-library
    /// code rather than application code.
    pub library: f64,
}

/// One episode template.
#[derive(Clone, Debug)]
pub struct EpisodeTemplate {
    /// Template index within the application's library.
    pub index: usize,
    /// Trigger ground truth.
    pub trigger: TriggerClass,
    /// Occurrence ground truth.
    pub occurrence: OccurrenceClass,
    /// How many episodes of this template one session contains.
    pub episodes_per_session: u64,
    /// For [`OccurrenceClass::Sometimes`]: fraction of episodes that are
    /// perceptible.
    pub slow_fraction: f64,
    /// Children of the dispatch root (empty for structureless episodes).
    pub structure: Vec<ScriptNode>,
    /// GUI-thread behaviour during perceptible episodes.
    pub behavior_slow: GuiBehavior,
    /// GUI-thread behaviour during fast episodes.
    pub behavior_fast: GuiBehavior,
    /// Median duration of perceptible episodes (ms).
    pub slow_median_ms: u64,
    /// Median duration of fast episodes (ms).
    pub fast_median_ms: u64,
    /// True if episodes call `System.gc()` (a major collection occupies
    /// most of the episode).
    pub explicit_major_gc: bool,
    /// GUI-thread allocation rate in bytes per second of episode time.
    pub alloc_rate: u64,
}

impl EpisodeTemplate {
    /// Number of dispatch descendants this template's episodes will have
    /// (the paper's "Descs" per-pattern statistic).
    pub fn tree_size(&self) -> usize {
        self.structure.iter().map(ScriptNode::size).sum()
    }

    /// Interval-tree depth of this template's episodes (root dispatch at
    /// depth 0).
    pub fn tree_depth(&self) -> u32 {
        self.structure
            .iter()
            .map(ScriptNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// Expected number of perceptible episodes per session.
    pub fn expected_perceptible(&self) -> u64 {
        match self.occurrence {
            OccurrenceClass::Always => self.episodes_per_session,
            OccurrenceClass::Once => 1.min(self.episodes_per_session),
            OccurrenceClass::Sometimes => {
                ((self.episodes_per_session as f64) * self.slow_fraction).round() as u64
            }
            OccurrenceClass::Never => 0,
        }
    }
}

/// Builds the full template library for an application profile.
///
/// The construction follows the calibration targets in order:
/// 1. split templates into singletons and recurring ones (Table III
///    "One-Ep" and "Dist");
/// 2. apportion episode counts over recurring templates with Zipf weights
///    (Fig 3's Pareto shape);
/// 3. assign triggers by the profile's mixes (Fig 5);
/// 4. assign occurrence classes, giving "always" preferentially to small
///    templates so the perceptible-episode total lands near Table III's
///    "≥ 100ms" (Fig 4);
/// 5. grow tree structures per trigger with the profile's size/depth
///    targets (Table III "Descs"/"Depth");
/// 6. derive behaviour mixes per template around the profile's time mixes
///    (Figs 6 and 8).
pub fn build_library(
    profile: &AppProfile,
    symbols: &mut SymbolTable,
    rng: &mut SimRng,
) -> Vec<EpisodeTemplate> {
    let pool = NamePool::new(&profile.package);
    let scale = &profile.scale;
    let n = scale.distinct_patterns.max(1) as usize;
    let n_singleton = ((n as f64) * scale.singleton_fraction).round() as usize;
    let n_recurring = n - n_singleton;

    // --- episode counts -------------------------------------------------
    // Structured (in-pattern) episodes: the paper's "#Eps". The remainder
    // of traced episodes is structureless filler generated by the runner.
    let structured_total = scale.structured_episodes.min(scale.traced_episodes);
    let recurring_total = structured_total.saturating_sub(n_singleton as u64);
    let weights = zipf_weights(n_recurring.max(1), 1.0);
    let recurring_counts = apportion(recurring_total, &weights, 2);

    // --- trigger assignment ---------------------------------------------
    let trig_weights = profile.trigger_perceptible.weights();

    // --- occurrence assignment ------------------------------------------
    // Counts of each class over all templates.
    let occ = &profile.occurrence;
    let n_always = ((n as f64) * occ.always).round() as usize;
    let n_once = ((n as f64) * occ.once).round() as usize;
    let n_sometimes = ((n as f64) * occ.sometimes).round() as usize;

    // Build the size list: recurring templates first (largest first), then
    // singletons. "Always" goes to the smallest templates (singletons
    // first), mirroring the paper's observation that singleton patterns
    // drive the "always" class.
    let mut sizes: Vec<u64> = recurring_counts.clone();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes.extend(std::iter::repeat_n(1, n_singleton));

    // Class assignment over the size-sorted list (largest first):
    // "sometimes" takes the biggest templates (a frequent pattern that is
    // occasionally slow, like JMol's molecule rendering), "always" and
    // "once" take the tail (singletons), "never" fills the middle.
    let mut classes: Vec<OccurrenceClass> = Vec::with_capacity(n);
    for i in 0..n {
        let from_end = n - 1 - i;
        let class = if i < n_sometimes {
            OccurrenceClass::Sometimes
        } else if from_end < n_always {
            OccurrenceClass::Always
        } else if from_end < n_always + n_once {
            OccurrenceClass::Once
        } else {
            OccurrenceClass::Never
        };
        classes.push(class);
    }

    // Solve the slow fraction of "sometimes" templates so total perceptible
    // episodes land on target.
    let always_eps: u64 = sizes
        .iter()
        .zip(&classes)
        .filter(|(_, c)| **c == OccurrenceClass::Always)
        .map(|(s, _)| *s)
        .sum();
    let once_eps = classes
        .iter()
        .filter(|c| **c == OccurrenceClass::Once)
        .count() as u64;
    let sometimes_eps: u64 = sizes
        .iter()
        .zip(&classes)
        .filter(|(_, c)| **c == OccurrenceClass::Sometimes)
        .map(|(s, _)| *s)
        .sum();
    let remaining = scale
        .perceptible_episodes
        .saturating_sub(always_eps)
        .saturating_sub(once_eps);
    let slow_fraction = if sometimes_eps == 0 {
        0.0
    } else {
        (remaining as f64 / sometimes_eps as f64).clamp(0.01, 0.95)
    };

    // --- materialize templates ------------------------------------------
    let gc_fraction = profile.time_perceptible.gc;
    let gc_cfg = crate::gc::GcConfig::macbook_2009();
    // Explicit-GC apps put their GC inside dedicated templates rather than
    // spreading allocation everywhere.
    // Collections get clamped to the enclosing interval's remaining
    // self-time and defer when segments are too small, which loses ~25% of
    // the demanded GC time; over-provision the allocation rate to land on
    // the profile's target fraction after those losses.
    let alloc_rate = if profile.explicit_major_gc {
        gc_cfg.alloc_rate_for_gc_fraction(gc_fraction * 0.25)
    } else {
        gc_cfg.alloc_rate_for_gc_fraction((gc_fraction * 1.35).min(0.9))
    };

    let mut templates = Vec::with_capacity(n);
    for (index, (&count, &occurrence)) in sizes.iter().zip(&classes).enumerate() {
        let mut trng = rng.fork(index as u64);
        let trigger = if profile.explicit_major_gc
            && occurrence == OccurrenceClass::Always
            && trng.chance(0.75)
        {
            // Arabeske's System.gc() episodes have no trigger child.
            TriggerClass::Unspecified
        } else {
            // Trigger-less structures all collapse to the same signature
            // after GC exclusion, so spreading "unspecified" over many
            // templates would silently merge them and undershoot the
            // distinct-pattern count; concentrate that mass instead.
            let mut w = trig_weights;
            w[3] *= 0.05;
            TriggerClass::ALL[trng.weighted_index(&w)]
        };
        let explicit_major_gc = profile.explicit_major_gc && trigger == TriggerClass::Unspecified;
        let structure = grow_structure(
            profile,
            trigger,
            explicit_major_gc,
            index,
            symbols,
            &pool,
            &mut trng,
        );
        let behavior_slow = behavior(profile, true, &mut trng);
        let behavior_fast = behavior(profile, false, &mut trng);
        let slow_median_ms = trng
            .log_normal(profile.perceptible_median_ms as f64, 0.35)
            .clamp(110.0, 4000.0) as u64;
        templates.push(EpisodeTemplate {
            index,
            trigger,
            occurrence,
            episodes_per_session: count.max(1),
            slow_fraction,
            structure,
            behavior_slow,
            behavior_fast,
            slow_median_ms,
            fast_median_ms: 8,
            explicit_major_gc,
            alloc_rate,
        });
    }

    // Explicit-GC templates all collapse into one mined pattern (their
    // only child is a GC interval, which signatures exclude), so the
    // distinct-pattern count would undershoot by their number. Compensate
    // with never-class input singletons so "Dist" and "One-Ep" stay on
    // target while the collapsed GC pattern keeps its episode mass.
    let collapsed = templates
        .iter()
        .filter(|t| t.explicit_major_gc)
        .count()
        .saturating_sub(1);
    for extra in 0..collapsed {
        let index = templates.len();
        let mut trng = rng.fork(0x5eed_0000 + index as u64);
        let structure = grow_structure(
            profile,
            TriggerClass::Input,
            false,
            index,
            symbols,
            &pool,
            &mut trng,
        );
        let behavior_slow = behavior(profile, true, &mut trng);
        let behavior_fast = behavior(profile, false, &mut trng);
        templates.push(EpisodeTemplate {
            index,
            trigger: TriggerClass::Input,
            occurrence: OccurrenceClass::Never,
            episodes_per_session: 1,
            slow_fraction: 0.0,
            structure,
            behavior_slow,
            behavior_fast,
            slow_median_ms: profile.perceptible_median_ms,
            fast_median_ms: 8,
            explicit_major_gc: false,
            alloc_rate,
        });
        let _ = extra;
    }
    templates
}

/// Draws a per-template behaviour around the profile's time mixes.
fn behavior(profile: &AppProfile, slow: bool, rng: &mut SimRng) -> GuiBehavior {
    let mix = if slow {
        &profile.time_perceptible
    } else {
        &profile.time_all
    };
    let jitter = |v: f64, rng: &mut SimRng| (v * (0.7 + 0.6 * rng.unit())).clamp(0.0, 0.9);
    let blocked = jitter(mix.blocked, rng);
    let waiting = jitter(mix.waiting, rng);
    let sleeping = jitter(mix.sleeping, rng);
    // Blocked/waiting/sleeping samples always show runtime-library frames
    // (monitors, event queues, Apple's blink animation), so the
    // runnable-conditional library probability must be solved from the
    // overall target: overall = nonrun + runnable * p.
    let nonrun = (blocked + waiting + sleeping).min(0.95);
    let library = ((mix.library - nonrun) / (1.0 - nonrun)).clamp(0.0, 1.0);
    GuiBehavior {
        blocked,
        waiting,
        sleeping,
        library,
    }
}

/// Grows the dispatch children for one template.
fn grow_structure(
    profile: &AppProfile,
    trigger: TriggerClass,
    explicit_major_gc: bool,
    index: usize,
    symbols: &mut SymbolTable,
    pool: &NamePool,
    rng: &mut SimRng,
) -> Vec<ScriptNode> {
    if explicit_major_gc {
        // A System.gc() episode: the dispatch contains one long GC.
        return vec![ScriptNode::leaf(IntervalKind::Gc, None, 0.85)];
    }
    let target_size = (profile.scale.tree_size as f64 * rng.log_normal(1.0, 0.4))
        .round()
        .clamp(1.0, 60.0) as usize;
    let target_depth = (profile.scale.tree_depth as f64 * rng.log_normal(1.0, 0.25))
        .round()
        .clamp(1.0, 16.0) as u32;
    let native_share = profile.time_perceptible.native;

    match trigger {
        TriggerClass::Input => {
            let listener = pool.listener(symbols, rng, index);
            let mut root = ScriptNode {
                kind: IntervalKind::Listener,
                symbol: Some(listener),
                span: 0.92,
                children: Vec::new(),
            };
            fill_work(
                &mut root,
                target_size.saturating_sub(1),
                target_depth.saturating_sub(1),
                native_share,
                index,
                symbols,
                pool,
                rng,
            );
            vec![root]
        }
        TriggerClass::Output => {
            let chain_len = target_depth.max(1);
            let mut node = paint_chain(chain_len, target_size, native_share, symbols, pool, rng);
            if rng.chance(profile.repaint_manager_fraction) {
                // Swing repaint manager: async interval wrapping the paint.
                node = ScriptNode {
                    kind: IntervalKind::Async,
                    symbol: None,
                    span: 0.95,
                    children: vec![node],
                };
            }
            vec![node]
        }
        TriggerClass::Asynchronous => {
            let mut root = ScriptNode {
                kind: IntervalKind::Async,
                symbol: None,
                span: 0.92,
                children: Vec::new(),
            };
            // Async work must not contain paint (the analysis would
            // reclassify it as output); use listener-free work instead.
            fill_work(
                &mut root,
                target_size.saturating_sub(1),
                target_depth.saturating_sub(1),
                native_share,
                index,
                symbols,
                pool,
                rng,
            );
            vec![root]
        }
        TriggerClass::Unspecified => {
            // No trigger child: either completely bare or a native-only
            // dispatch.
            if rng.chance(0.5) {
                Vec::new()
            } else {
                vec![ScriptNode::leaf(
                    IntervalKind::Native,
                    Some(pool.native(symbols, rng)),
                    0.7,
                )]
            }
        }
    }
}

/// Builds a nested paint chain (GanttProject-style recursive component
/// painting), distributing any extra size budget as sibling paints.
fn paint_chain(
    depth: u32,
    size_budget: usize,
    native_share: f64,
    symbols: &mut SymbolTable,
    pool: &NamePool,
    rng: &mut SimRng,
) -> ScriptNode {
    let mut node = ScriptNode {
        kind: IntervalKind::Paint,
        symbol: Some(pool.paint(symbols, rng)),
        span: 0.93,
        children: Vec::new(),
    };
    if depth > 1 {
        let child = paint_chain(
            depth - 1,
            size_budget.saturating_sub(1),
            native_share,
            symbols,
            pool,
            rng,
        );
        node.children.push(child);
        // Spend leftover size budget on sibling paints at this level.
        let extra = size_budget.saturating_sub(depth as usize);
        let siblings = (extra / depth.max(1) as usize).min(3);
        for _ in 0..siblings {
            node.children.push(ScriptNode::leaf(
                IntervalKind::Paint,
                Some(pool.paint(symbols, rng)),
                0.12,
            ));
        }
        normalize_spans(&mut node.children, 0.95);
    } else if rng.chance(native_share * 4.0) {
        // Rendering bottoms out in a native call (JFreeChart-style). The
        // leaf's span is a fraction of the *bottom* paint node, which is
        // itself ~0.93^depth of the episode, so over-provision to land on
        // the profile's episode-level native fraction.
        node.children.push(ScriptNode::leaf(
            IntervalKind::Native,
            Some(pool.native(symbols, rng)),
            (native_share * 1.6).clamp(0.05, 0.7),
        ));
    }
    node
}

/// Fills a work subtree under `root` with nested listener/native calls.
#[allow(clippy::too_many_arguments)]
fn fill_work(
    root: &mut ScriptNode,
    size_budget: usize,
    depth_budget: u32,
    native_share: f64,
    index: usize,
    symbols: &mut SymbolTable,
    pool: &NamePool,
    rng: &mut SimRng,
) {
    if size_budget == 0 || depth_budget == 0 {
        return;
    }
    let n_children = rng.range_u64(1, 3.min(size_budget as u64)) as usize;
    for c in 0..n_children {
        // The first child continues the call chain with the bulk of the
        // size budget (real handler stacks are chains with small fan-out),
        // so trees actually reach the profile's target depth.
        let child_budget = if c == 0 {
            size_budget.saturating_sub(n_children)
        } else {
            0
        };
        let mut child = if rng.chance(native_share * 2.0) {
            ScriptNode::leaf(IntervalKind::Native, Some(pool.native(symbols, rng)), 0.3)
        } else {
            ScriptNode {
                kind: IntervalKind::Listener,
                symbol: Some(pool.app_method(symbols, rng, index * 7 + c)),
                span: 0.3,
                children: Vec::new(),
            }
        };
        if child.kind != IntervalKind::Native {
            fill_work(
                &mut child,
                child_budget,
                depth_budget - 1,
                native_share,
                index,
                symbols,
                pool,
                rng,
            );
        }
        root.children.push(child);
    }
    normalize_spans(&mut root.children, 0.9);
}

/// Rescales sibling spans so they sum to at most `budget` of the parent.
fn normalize_spans(children: &mut [ScriptNode], budget: f64) {
    let total: f64 = children.iter().map(|c| c.span).sum();
    if total > budget {
        let scale = budget / total;
        for c in children {
            c.span *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;

    fn library_for(profile: &AppProfile, seed: u64) -> Vec<EpisodeTemplate> {
        let mut symbols = SymbolTable::new();
        let mut rng = SimRng::new(seed);
        build_library(profile, &mut symbols, &mut rng)
    }

    #[test]
    fn library_size_matches_profile() {
        let p = apps::gantt_project();
        let lib = library_for(&p, 1);
        assert_eq!(lib.len(), p.scale.distinct_patterns as usize);
    }

    #[test]
    fn explicit_gc_apps_get_compensation_singletons() {
        let p = apps::arabeske();
        let lib = library_for(&p, 1);
        let gc_templates = lib.iter().filter(|t| t.explicit_major_gc).count();
        assert!(gc_templates > 1);
        // One extra never-singleton per collapsing GC template (minus the
        // one surviving merged pattern).
        assert_eq!(
            lib.len(),
            p.scale.distinct_patterns as usize + gc_templates - 1
        );
    }

    #[test]
    fn singleton_fraction_respected() {
        let p = apps::net_beans();
        let lib = library_for(&p, 2);
        let singletons = lib.iter().filter(|t| t.episodes_per_session == 1).count();
        let expected = (p.scale.distinct_patterns as f64 * p.scale.singleton_fraction) as usize;
        // Recurring templates can degenerate to 1 episode too, so we only
        // check a lower bound and a sane ceiling.
        assert!(singletons >= expected, "{singletons} < {expected}");
        assert!(singletons <= lib.len());
    }

    #[test]
    fn episode_totals_are_close_to_target() {
        let p = apps::argo_uml();
        let lib = library_for(&p, 3);
        let total: u64 = lib.iter().map(|t| t.episodes_per_session).sum();
        let target = p.scale.structured_episodes;
        let ratio = total as f64 / target as f64;
        assert!((0.9..1.1).contains(&ratio), "total {total} target {target}");
    }

    #[test]
    fn perceptible_totals_are_close_to_target() {
        for p in [apps::jmol(), apps::free_mind(), apps::gantt_project()] {
            let lib = library_for(&p, 4);
            let perceptible: u64 = lib
                .iter()
                .map(super::EpisodeTemplate::expected_perceptible)
                .sum();
            let target = p.scale.perceptible_episodes;
            let ratio = perceptible as f64 / target.max(1) as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: perceptible {perceptible} target {target}",
                p.name
            );
        }
    }

    #[test]
    fn occurrence_mix_roughly_matches() {
        let p = apps::free_mind(); // 92% never in the paper
        let lib = library_for(&p, 5);
        let never = lib
            .iter()
            .filter(|t| t.occurrence == OccurrenceClass::Never)
            .count();
        let frac = never as f64 / lib.len() as f64;
        assert!(frac > 0.8, "never fraction {frac}");
    }

    #[test]
    fn async_templates_have_no_paint_descendants() {
        fn has_paint(nodes: &[ScriptNode]) -> bool {
            nodes
                .iter()
                .any(|n| n.kind == IntervalKind::Paint || has_paint(&n.children))
        }
        for p in [apps::find_bugs(), apps::net_beans()] {
            let lib = library_for(&p, 6);
            for t in &lib {
                if t.trigger == TriggerClass::Asynchronous {
                    assert!(
                        !has_paint(&t.structure),
                        "async template {} contains paint",
                        t.index
                    );
                }
            }
        }
    }

    #[test]
    fn unspecified_templates_have_no_trigger_children() {
        let p = apps::arabeske();
        let lib = library_for(&p, 7);
        let mut saw_unspecified = false;
        for t in &lib {
            if t.trigger == TriggerClass::Unspecified {
                saw_unspecified = true;
                for child in &t.structure {
                    assert!(
                        !child.kind.is_trigger_kind(),
                        "unspecified template has trigger child {:?}",
                        child.kind
                    );
                }
            }
        }
        assert!(
            saw_unspecified,
            "Arabeske should have unspecified templates"
        );
    }

    #[test]
    fn arabeske_has_explicit_gc_templates() {
        let p = apps::arabeske();
        let lib = library_for(&p, 8);
        let gc_templates = lib.iter().filter(|t| t.explicit_major_gc).count();
        assert!(gc_templates > 0);
    }

    #[test]
    fn gantt_trees_are_deep() {
        let p = apps::gantt_project();
        let lib = library_for(&p, 9);
        let avg_depth: f64 =
            lib.iter().map(|t| t.tree_depth() as f64).sum::<f64>() / lib.len() as f64;
        // Paper: depth 12 (root at 0 => structure depth ~11); allow slack.
        assert!(avg_depth > 6.0, "avg depth {avg_depth}");
    }

    #[test]
    fn spans_are_normalized() {
        fn check(nodes: &[ScriptNode]) {
            let total: f64 = nodes.iter().map(|n| n.span).sum();
            assert!(total <= 1.0 + 1e-9, "span sum {total}");
            for n in nodes {
                check(&n.children);
            }
        }
        for p in apps::standard_suite() {
            let lib = library_for(&p, 10);
            for t in &lib {
                check(&t.structure);
            }
        }
    }

    #[test]
    fn library_is_deterministic() {
        let p = apps::jedit();
        let a = library_for(&p, 11);
        let b = library_for(&p, 11);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trigger, y.trigger);
            assert_eq!(x.occurrence, y.occurrence);
            assert_eq!(x.episodes_per_session, y.episodes_per_session);
            assert_eq!(x.tree_size(), y.tree_size());
        }
    }

    #[test]
    fn script_node_metrics() {
        let tree = ScriptNode {
            kind: IntervalKind::Listener,
            symbol: None,
            span: 0.9,
            children: vec![
                ScriptNode::leaf(IntervalKind::Native, None, 0.2),
                ScriptNode {
                    kind: IntervalKind::Paint,
                    symbol: None,
                    span: 0.3,
                    children: vec![ScriptNode::leaf(IntervalKind::Paint, None, 0.5)],
                },
            ],
        };
        assert_eq!(tree.size(), 4);
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn expected_perceptible_by_class() {
        let mut t = EpisodeTemplate {
            index: 0,
            trigger: TriggerClass::Input,
            occurrence: OccurrenceClass::Always,
            episodes_per_session: 10,
            slow_fraction: 0.3,
            structure: Vec::new(),
            behavior_slow: GuiBehavior {
                blocked: 0.0,
                waiting: 0.0,
                sleeping: 0.0,
                library: 0.5,
            },
            behavior_fast: GuiBehavior {
                blocked: 0.0,
                waiting: 0.0,
                sleeping: 0.0,
                library: 0.5,
            },
            slow_median_ms: 200,
            fast_median_ms: 8,
            explicit_major_gc: false,
            alloc_rate: 0,
        };
        assert_eq!(t.expected_perceptible(), 10);
        t.occurrence = OccurrenceClass::Once;
        assert_eq!(t.expected_perceptible(), 1);
        t.occurrence = OccurrenceClass::Sometimes;
        assert_eq!(t.expected_perceptible(), 3);
        t.occurrence = OccurrenceClass::Never;
        assert_eq!(t.expected_perceptible(), 0);
    }
}
