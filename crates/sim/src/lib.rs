//! Discrete-event simulator of interactive Java application sessions.
//!
//! The LagAlyzer paper characterizes 14 real Swing applications driven by
//! hand for ~8 minutes each on 2009 hardware. Neither the applications, the
//! LiLa profiler, nor the human operators are available here, so this crate
//! stands in for all three: it synthesizes session traces whose statistical
//! structure matches the paper's per-application measurements, and it feeds
//! them through the same tracer-side filter and trace format a real LiLa
//! deployment would.
//!
//! The simulator is honest about what it models:
//!
//! * a **virtual clock** in nanoseconds; no wall-clock time is involved;
//! * an **episode template library** per application ([`template`]),
//!   mirroring how real GUI programs re-execute the same handler trees over
//!   and over (which is precisely the redundancy LagAlyzer's pattern mining
//!   exploits);
//! * a **heap/GC model** ([`gc`]) with allocation-driven minor collections
//!   and explicit `System.gc()`-style major collections, stop-the-world
//!   with JVMTI-style bracketing (sampling suppressed);
//! * a **stack sampler** ([`exec`]) at a fixed cadence, recording per-thread
//!   states (runnable / blocked / waiting / sleeping) and stacks;
//! * **background threads** that compete with the GUI thread and post
//!   asynchronous events;
//! * the paper's quirks: the Swing repaint-manager's `async(paint)`
//!   episodes, and Apple's combo-box blink animation that parks the GUI
//!   thread in `Thread.sleep` inside `com.apple.laf` code.
//!
//! The 14 calibrated application profiles live in [`apps`]; scripted
//! single-episode scenarios reproducing the paper's Fig 1 and Fig 2
//! sketches live in [`scenarios`].
//!
//! # Example
//!
//! ```
//! use lagalyzer_sim::{apps, runner};
//!
//! let profile = apps::crossword_sage();
//! let trace = runner::simulate_session(&profile, 0, 42);
//! assert_eq!(trace.meta().application, "CrosswordSage");
//! assert!(!trace.episodes().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod exec;
pub mod gc;
pub mod names;
pub mod profile;
pub mod rng;
pub mod runner;
pub mod scenarios;
pub mod template;

pub use apps::standard_suite;
pub use profile::AppProfile;
pub use runner::{simulate_session, simulate_suite, SimulatedApp};
