//! The 14 calibrated application profiles (the paper's Table II suite).
//!
//! Each constructor encodes the paper's published per-application numbers:
//! Table II identity (name, version, classes), Table III session scale, and
//! the behavioural mixes read off Figs 4–8 (exact where the text states a
//! number, estimated from the charts otherwise). These profiles are the
//! single source of calibration truth; the characterization experiments
//! regenerate the paper's tables and figures from sessions synthesized out
//! of them.

use lagalyzer_model::DurationNs;

use crate::profile::{
    AppProfile, BackgroundThreads, OccurrenceMix, SessionScale, TimeMix, TriggerMix,
};

/// Parameters that vary per application, bundled to keep the constructors
/// readable.
#[allow(clippy::too_many_arguments)]
fn profile(
    name: &str,
    version: &str,
    classes: u32,
    description: &str,
    package: &str,
    scale: SessionScale,
    trigger_perceptible: TriggerMix,
    occurrence: OccurrenceMix,
    time_perceptible: TimeMix,
    background: BackgroundThreads,
    explicit_major_gc: bool,
    perceptible_median_ms: u64,
) -> AppProfile {
    // The all-episodes trigger mix shifts toward input: the bulk of traced
    // episodes are quick keystroke/mouse handlers.
    let trigger_all = TriggerMix {
        input: (trigger_perceptible.input + 0.15).min(0.9),
        output: trigger_perceptible.output * 0.8,
        asynchronous: trigger_perceptible.asynchronous * 0.8,
        unspecified: trigger_perceptible.unspecified * 0.5 + 0.02,
    };
    // Aggregated over all episodes the paper's Fig 8 shows almost no
    // blocking, and Fig 6's GC share is roughly half the perceptible one
    // (ArgoUML: 16% overall vs 26% perceptible).
    let time_all = TimeMix {
        library: time_perceptible.library,
        gc: time_perceptible.gc * 0.6,
        native: time_perceptible.native,
        blocked: 0.002,
        waiting: 0.004,
        sleeping: 0.005,
    };
    AppProfile {
        name: name.to_owned(),
        version: version.to_owned(),
        classes,
        description: description.to_owned(),
        package: package.to_owned(),
        scale,
        trigger_perceptible,
        trigger_all,
        occurrence,
        time_perceptible,
        time_all,
        background,
        explicit_major_gc,
        repaint_manager_fraction: 0.15,
        perceptible_median_ms,
        sample_period: DurationNs::from_millis(10),
        extra_stack_frames: 0,
    }
}

/// Arabeske 2.0.1 — texture editor that calls `System.gc()` explicitly
/// during episodes, making GC ~60% of its perceptible lag and 57% of its
/// perceptible episodes trigger-less.
pub fn arabeske() -> AppProfile {
    profile(
        "Arabeske",
        "2.0.1",
        222,
        "Arabeske texture editor",
        "org.arabeske",
        SessionScale {
            e2e_secs: 461,
            in_episode_fraction: 0.25,
            short_episodes: 323_605,
            traced_episodes: 6_278,
            structured_episodes: 5_456,
            perceptible_episodes: 177,
            distinct_patterns: 427,
            singleton_fraction: 0.62,
            tree_size: 7,
            tree_depth: 5,
        },
        TriggerMix {
            input: 0.22,
            output: 0.17,
            asynchronous: 0.04,
            unspecified: 0.57,
        },
        OccurrenceMix {
            always: 0.25,
            sometimes: 0.04,
            once: 0.03,
            never: 0.68,
        },
        TimeMix {
            library: 0.65,
            gc: 0.60,
            native: 0.02,
            blocked: 0.01,
            waiting: 0.02,
            sleeping: 0.03,
        },
        BackgroundThreads {
            count: 2,
            runnable_all: 0.12,
            runnable_perceptible: 0.25,
        },
        true,
        280,
    )
}

/// ArgoUML 0.28 — UML CASE tool; 78% of its perceptible episodes are input
/// and 26% of perceptible lag is (minor) garbage collection driven by a
/// high allocation rate.
pub fn argo_uml() -> AppProfile {
    profile(
        "ArgoUML",
        "0.28",
        5_349,
        "UML CASE tool",
        "org.argouml",
        SessionScale {
            e2e_secs: 630,
            in_episode_fraction: 0.35,
            short_episodes: 196_247,
            traced_episodes: 9_066,
            structured_episodes: 8_011,
            perceptible_episodes: 265,
            distinct_patterns: 1_292,
            singleton_fraction: 0.66,
            tree_size: 10,
            tree_depth: 5,
        },
        TriggerMix {
            input: 0.78,
            output: 0.16,
            asynchronous: 0.03,
            unspecified: 0.03,
        },
        OccurrenceMix {
            always: 0.15,
            sometimes: 0.03,
            once: 0.03,
            never: 0.79,
        },
        TimeMix {
            library: 0.55,
            gc: 0.26,
            native: 0.03,
            blocked: 0.02,
            waiting: 0.03,
            sleeping: 0.02,
        },
        BackgroundThreads {
            count: 2,
            runnable_all: 0.12,
            runnable_perceptible: 0.03,
        },
        false,
        200,
    )
}

/// CrosswordSage 0.3.5 — small, focused crossword puzzle editor.
pub fn crossword_sage() -> AppProfile {
    profile(
        "CrosswordSage",
        "0.3.5",
        34,
        "Crossword puzzle editor",
        "crosswordsage",
        SessionScale {
            e2e_secs: 367,
            in_episode_fraction: 0.08,
            short_episodes: 109_547,
            traced_episodes: 1_173,
            structured_episodes: 1_068,
            perceptible_episodes: 36,
            distinct_patterns: 119,
            singleton_fraction: 0.46,
            tree_size: 5,
            tree_depth: 4,
        },
        TriggerMix {
            input: 0.55,
            output: 0.40,
            asynchronous: 0.02,
            unspecified: 0.03,
        },
        OccurrenceMix {
            always: 0.20,
            sometimes: 0.04,
            once: 0.03,
            never: 0.73,
        },
        TimeMix {
            library: 0.50,
            gc: 0.05,
            native: 0.03,
            blocked: 0.01,
            waiting: 0.02,
            sleeping: 0.04,
        },
        BackgroundThreads {
            count: 1,
            runnable_all: 0.15,
            runnable_perceptible: 0.03,
        },
        false,
        160,
    )
}

/// Euclide 0.5.2 — geometry construction kit; over 60% of its perceptible
/// lag is the GUI thread sleeping inside Apple's combo-box blink animation,
/// and ~73% of its lag is in runtime-library code.
pub fn euclide() -> AppProfile {
    profile(
        "Euclide",
        "0.5.2",
        398,
        "Geometry construction kit",
        "org.euclide",
        SessionScale {
            e2e_secs: 614,
            in_episode_fraction: 0.35,
            short_episodes: 109_572,
            traced_episodes: 9_676,
            structured_episodes: 9_053,
            perceptible_episodes: 96,
            distinct_patterns: 202,
            singleton_fraction: 0.35,
            tree_size: 5,
            tree_depth: 4,
        },
        TriggerMix {
            input: 0.60,
            output: 0.33,
            asynchronous: 0.04,
            unspecified: 0.03,
        },
        OccurrenceMix {
            always: 0.25,
            sometimes: 0.05,
            once: 0.05,
            never: 0.65,
        },
        TimeMix {
            library: 0.73,
            gc: 0.04,
            native: 0.02,
            blocked: 0.01,
            waiting: 0.02,
            sleeping: 0.62,
        },
        BackgroundThreads {
            count: 2,
            runnable_all: 0.15,
            runnable_perceptible: 0.02,
        },
        false,
        300,
    )
}

/// FindBugs 1.3.8 — bug browser with the suite's largest asynchronous share
/// (42% of perceptible episodes: a progress-bar animation updated from a
/// project-loading background thread that also competes for the CPU).
pub fn find_bugs() -> AppProfile {
    profile(
        "FindBugs",
        "1.3.8",
        3_698,
        "Bug browser",
        "edu.umd.cs.findbugs",
        SessionScale {
            e2e_secs: 599,
            in_episode_fraction: 0.21,
            short_episodes: 39_254,
            traced_episodes: 6_336,
            structured_episodes: 6_128,
            perceptible_episodes: 120,
            distinct_patterns: 245,
            singleton_fraction: 0.44,
            tree_size: 6,
            tree_depth: 4,
        },
        TriggerMix {
            input: 0.30,
            output: 0.25,
            asynchronous: 0.42,
            unspecified: 0.03,
        },
        OccurrenceMix {
            always: 0.30,
            sometimes: 0.05,
            once: 0.04,
            never: 0.61,
        },
        TimeMix {
            library: 0.50,
            gc: 0.08,
            native: 0.03,
            blocked: 0.02,
            waiting: 0.04,
            sleeping: 0.02,
        },
        BackgroundThreads {
            count: 3,
            runnable_all: 0.12,
            runnable_perceptible: 0.18,
        },
        false,
        200,
    )
}

/// FreeMind 0.8.1 — mind-mapping editor; 92% of its patterns are never
/// perceptible, and its main synchronization cost is monitor contention in
/// the runtime library's display-configuration code (~12%).
pub fn free_mind() -> AppProfile {
    profile(
        "FreeMind",
        "0.8.1",
        1_909,
        "Mind mapping editor",
        "freemind",
        SessionScale {
            e2e_secs: 524,
            in_episode_fraction: 0.11,
            short_episodes: 325_135,
            traced_episodes: 3_462,
            structured_episodes: 3_326,
            perceptible_episodes: 26,
            distinct_patterns: 246,
            singleton_fraction: 0.55,
            tree_size: 7,
            tree_depth: 5,
        },
        TriggerMix {
            input: 0.45,
            output: 0.48,
            asynchronous: 0.04,
            unspecified: 0.03,
        },
        OccurrenceMix {
            always: 0.02,
            sometimes: 0.04,
            once: 0.02,
            never: 0.92,
        },
        TimeMix {
            library: 0.60,
            gc: 0.05,
            native: 0.03,
            blocked: 0.12,
            waiting: 0.03,
            sleeping: 0.02,
        },
        BackgroundThreads {
            count: 2,
            runnable_all: 0.10,
            runnable_perceptible: 0.03,
        },
        false,
        180,
    )
}

/// GanttProject 2.0.9 — Gantt chart editor with the suite's deepest
/// interval trees (size 18, depth 12: recursive component painting), 57% of
/// its patterns always perceptibly slow, and the most perceptible episodes
/// per minute after JMol.
pub fn gantt_project() -> AppProfile {
    profile(
        "GanttProject",
        "2.0.9",
        5_288,
        "Gantt chart editor",
        "net.sourceforge.ganttproject",
        SessionScale {
            e2e_secs: 523,
            in_episode_fraction: 0.47,
            short_episodes: 126_940,
            traced_episodes: 2_564,
            structured_episodes: 2_373,
            perceptible_episodes: 706,
            distinct_patterns: 803,
            singleton_fraction: 0.70,
            tree_size: 18,
            tree_depth: 12,
        },
        TriggerMix {
            input: 0.25,
            output: 0.70,
            asynchronous: 0.03,
            unspecified: 0.02,
        },
        OccurrenceMix {
            always: 0.57,
            sometimes: 0.05,
            once: 0.03,
            never: 0.35,
        },
        TimeMix {
            library: 0.45,
            gc: 0.06,
            native: 0.04,
            blocked: 0.01,
            waiting: 0.03,
            sleeping: 0.02,
        },
        BackgroundThreads {
            count: 2,
            runnable_all: 0.10,
            runnable_perceptible: 0.015,
        },
        false,
        180,
    )
}

/// jEdit 4.3pre16 — programmer's text editor; over 25% of its perceptible
/// lag is the GUI thread waiting, tied to event processing inside modal
/// dialogs.
pub fn jedit() -> AppProfile {
    profile(
        "JEdit",
        "4.3pre16",
        1_150,
        "Programmer's text editor",
        "org.gjt.sp.jedit",
        SessionScale {
            e2e_secs: 502,
            in_episode_fraction: 0.09,
            short_episodes: 117_615,
            traced_episodes: 2_271,
            structured_episodes: 1_610,
            perceptible_episodes: 24,
            distinct_patterns: 150,
            singleton_fraction: 0.50,
            tree_size: 5,
            tree_depth: 4,
        },
        TriggerMix {
            input: 0.60,
            output: 0.32,
            asynchronous: 0.05,
            unspecified: 0.03,
        },
        OccurrenceMix {
            always: 0.08,
            sometimes: 0.04,
            once: 0.03,
            never: 0.85,
        },
        TimeMix {
            library: 0.55,
            gc: 0.05,
            native: 0.03,
            blocked: 0.02,
            waiting: 0.27,
            sleeping: 0.02,
        },
        BackgroundThreads {
            count: 2,
            runnable_all: 0.10,
            runnable_perceptible: 0.03,
        },
        false,
        200,
    )
}

/// JFreeChart 1.0.13 (time-series demo) — chart library whose perceptible
/// lag is dominated by output episodes, with 24% of it inside native
/// rendering calls that individually complete quickly but add up.
pub fn jfree_chart() -> AppProfile {
    profile(
        "JFreeChart",
        "1.0.13",
        1_667,
        "Chart library (time data)",
        "org.jfree.chart",
        SessionScale {
            e2e_secs: 250,
            in_episode_fraction: 0.26,
            short_episodes: 77_720,
            traced_episodes: 1_658,
            structured_episodes: 1_581,
            perceptible_episodes: 175,
            distinct_patterns: 114,
            singleton_fraction: 0.44,
            tree_size: 6,
            tree_depth: 5,
        },
        TriggerMix {
            input: 0.12,
            output: 0.82,
            asynchronous: 0.04,
            unspecified: 0.02,
        },
        OccurrenceMix {
            always: 0.30,
            sometimes: 0.10,
            once: 0.04,
            never: 0.56,
        },
        TimeMix {
            library: 0.60,
            gc: 0.06,
            native: 0.24,
            blocked: 0.01,
            waiting: 0.02,
            sleeping: 0.02,
        },
        BackgroundThreads {
            count: 1,
            runnable_all: 0.15,
            runnable_perceptible: 0.04,
        },
        false,
        140,
    )
}

/// JHotDraw 7.1 (Draw sample) — vector graphics editor; 96% of its
/// perceptible lag is application code (bezier-curve handle/outline
/// drawing that does not scale with curve complexity).
pub fn jhot_draw() -> AppProfile {
    profile(
        "JHotDraw",
        "7.1",
        1_146,
        "Vector graphics editor",
        "org.jhotdraw",
        SessionScale {
            e2e_secs: 421,
            in_episode_fraction: 0.41,
            short_episodes: 246_836,
            traced_episodes: 5_980,
            structured_episodes: 5_675,
            perceptible_episodes: 338,
            distinct_patterns: 454,
            singleton_fraction: 0.70,
            tree_size: 8,
            tree_depth: 5,
        },
        TriggerMix {
            input: 0.55,
            output: 0.40,
            asynchronous: 0.03,
            unspecified: 0.02,
        },
        OccurrenceMix {
            always: 0.40,
            sometimes: 0.06,
            once: 0.03,
            never: 0.51,
        },
        TimeMix {
            library: 0.04,
            gc: 0.03,
            native: 0.02,
            blocked: 0.01,
            waiting: 0.01,
            sleeping: 0.01,
        },
        BackgroundThreads {
            count: 1,
            runnable_all: 0.12,
            runnable_perceptible: 0.02,
        },
        false,
        250,
    )
}

/// Jmol 11.6.21 — chemical structure viewer with the suite's worst
/// perceptible performance: a timer-based 3-D animation repaints every
/// ~40 ms, and 98% of its perceptible episodes are output.
pub fn jmol() -> AppProfile {
    profile(
        "JMol",
        "11.6.21",
        1_422,
        "Chemical structure viewer",
        "org.jmol",
        SessionScale {
            e2e_secs: 449,
            in_episode_fraction: 0.46,
            short_episodes: 110_929,
            traced_episodes: 3_197,
            structured_episodes: 3_062,
            perceptible_episodes: 604,
            distinct_patterns: 187,
            singleton_fraction: 0.52,
            tree_size: 7,
            tree_depth: 5,
        },
        TriggerMix {
            input: 0.013,
            output: 0.98,
            asynchronous: 0.005,
            unspecified: 0.002,
        },
        OccurrenceMix {
            always: 0.30,
            sometimes: 0.10,
            once: 0.03,
            never: 0.57,
        },
        TimeMix {
            library: 0.30,
            gc: 0.05,
            native: 0.06,
            blocked: 0.01,
            waiting: 0.02,
            sleeping: 0.01,
        },
        BackgroundThreads {
            count: 2,
            runnable_all: 0.11,
            runnable_perceptible: 0.015,
        },
        false,
        250,
    )
}

/// LAoE 0.6.03 — audio sample editor; generates the suite's largest flood
/// of sub-threshold episodes (over 1.2 million per session).
pub fn laoe() -> AppProfile {
    profile(
        "Laoe",
        "0.6.03",
        688,
        "Audio sample editor",
        "ch.laoe",
        SessionScale {
            e2e_secs: 460,
            in_episode_fraction: 0.47,
            short_episodes: 1_241_198,
            traced_episodes: 3_174,
            structured_episodes: 3_007,
            perceptible_episodes: 61,
            distinct_patterns: 226,
            singleton_fraction: 0.58,
            tree_size: 8,
            tree_depth: 5,
        },
        TriggerMix {
            input: 0.50,
            output: 0.42,
            asynchronous: 0.05,
            unspecified: 0.03,
        },
        OccurrenceMix {
            always: 0.15,
            sometimes: 0.04,
            once: 0.04,
            never: 0.77,
        },
        TimeMix {
            library: 0.50,
            gc: 0.06,
            native: 0.05,
            blocked: 0.02,
            waiting: 0.03,
            sleeping: 0.02,
        },
        BackgroundThreads {
            count: 2,
            runnable_all: 0.11,
            runnable_perceptible: 0.03,
        },
        false,
        300,
    )
}

/// NetBeans 6.7 (Java SE) — the suite's largest application (45k classes);
/// uses background threads enough to exceed one runnable thread even
/// during perceptible episodes.
pub fn net_beans() -> AppProfile {
    profile(
        "NetBeans",
        "6.7",
        45_367,
        "Development environment",
        "org.netbeans",
        SessionScale {
            e2e_secs: 398,
            in_episode_fraction: 0.27,
            short_episodes: 305_177,
            traced_episodes: 3_120,
            structured_episodes: 2_911,
            perceptible_episodes: 149,
            distinct_patterns: 642,
            singleton_fraction: 0.66,
            tree_size: 10,
            tree_depth: 5,
        },
        TriggerMix {
            input: 0.45,
            output: 0.40,
            asynchronous: 0.10,
            unspecified: 0.05,
        },
        OccurrenceMix {
            always: 0.18,
            sometimes: 0.04,
            once: 0.03,
            never: 0.75,
        },
        TimeMix {
            library: 0.55,
            gc: 0.08,
            native: 0.04,
            blocked: 0.03,
            waiting: 0.05,
            sleeping: 0.02,
        },
        BackgroundThreads {
            count: 4,
            runnable_all: 0.08,
            runnable_perceptible: 0.10,
        },
        false,
        300,
    )
}

/// SwingSet 2 — Sun's Swing component demo; nearly all its code is the
/// toolkit itself, so library time dominates.
pub fn swing_set() -> AppProfile {
    profile(
        "SwingSet",
        "2",
        131,
        "Swing component demo",
        "swingset",
        SessionScale {
            e2e_secs: 384,
            in_episode_fraction: 0.2,
            short_episodes: 219_569,
            traced_episodes: 4_310,
            structured_episodes: 4_152,
            perceptible_episodes: 70,
            distinct_patterns: 444,
            singleton_fraction: 0.59,
            tree_size: 9,
            tree_depth: 6,
        },
        TriggerMix {
            input: 0.40,
            output: 0.55,
            asynchronous: 0.03,
            unspecified: 0.02,
        },
        OccurrenceMix {
            always: 0.12,
            sometimes: 0.03,
            once: 0.02,
            never: 0.83,
        },
        TimeMix {
            library: 0.70,
            gc: 0.05,
            native: 0.05,
            blocked: 0.01,
            waiting: 0.03,
            sleeping: 0.05,
        },
        BackgroundThreads {
            count: 2,
            runnable_all: 0.10,
            runnable_perceptible: 0.03,
        },
        false,
        220,
    )
}

/// The full 14-application suite in the paper's Table II/III order.
pub fn standard_suite() -> Vec<AppProfile> {
    vec![
        arabeske(),
        argo_uml(),
        crossword_sage(),
        euclide(),
        find_bugs(),
        free_mind(),
        gantt_project(),
        jedit(),
        jfree_chart(),
        jhot_draw(),
        jmol(),
        laoe(),
        net_beans(),
        swing_set(),
    ]
}

/// Looks up a profile by (case-insensitive) application name.
pub fn by_name(name: &str) -> Option<AppProfile> {
    standard_suite()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_apps_in_table2_order() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 14);
        let names: Vec<&str> = suite.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names[0], "Arabeske");
        assert_eq!(names[13], "SwingSet");
        assert_eq!(names[6], "GanntProject".replace("nn", "nt")); // GanttProject
    }

    #[test]
    fn class_counts_match_table2() {
        assert_eq!(crossword_sage().classes, 34);
        assert_eq!(net_beans().classes, 45_367);
        assert_eq!(argo_uml().classes, 5_349);
    }

    #[test]
    fn table3_scale_fields_match() {
        let g = gantt_project();
        assert_eq!(g.scale.perceptible_episodes, 706);
        assert_eq!(g.scale.tree_size, 18);
        assert_eq!(g.scale.tree_depth, 12);
        let l = laoe();
        assert_eq!(l.scale.short_episodes, 1_241_198);
        let j = jmol();
        assert_eq!(j.scale.traced_episodes, 3_197);
    }

    #[test]
    fn only_arabeske_calls_system_gc() {
        for p in standard_suite() {
            assert_eq!(p.explicit_major_gc, p.name == "Arabeske", "{}", p.name);
        }
    }

    #[test]
    fn mean_trigger_mix_matches_paper() {
        // Paper §IV-C: on average 40% input, 47% output, 7% async.
        let suite = standard_suite();
        let n = suite.len() as f64;
        let mean_in: f64 = suite
            .iter()
            .map(|p| p.trigger_perceptible.input)
            .sum::<f64>()
            / n;
        let mean_out: f64 = suite
            .iter()
            .map(|p| p.trigger_perceptible.output)
            .sum::<f64>()
            / n;
        let mean_async: f64 = suite
            .iter()
            .map(|p| p.trigger_perceptible.asynchronous)
            .sum::<f64>()
            / n;
        assert!((mean_in - 0.40).abs() < 0.06, "input {mean_in}");
        assert!((mean_out - 0.47).abs() < 0.06, "output {mean_out}");
        assert!((mean_async - 0.07).abs() < 0.03, "async {mean_async}");
    }

    #[test]
    fn mean_location_mix_matches_paper() {
        // Paper §IV-D: 52% library, 11% GC, 5% native.
        let suite = standard_suite();
        let n = suite.len() as f64;
        let lib: f64 = suite
            .iter()
            .map(|p| p.time_perceptible.library)
            .sum::<f64>()
            / n;
        let gc: f64 = suite.iter().map(|p| p.time_perceptible.gc).sum::<f64>() / n;
        let native: f64 = suite.iter().map(|p| p.time_perceptible.native).sum::<f64>() / n;
        assert!((lib - 0.52).abs() < 0.05, "library {lib}");
        assert!((gc - 0.11).abs() < 0.03, "gc {gc}");
        assert!((native - 0.05).abs() < 0.02, "native {native}");
    }

    #[test]
    fn outliers_match_paper_callouts() {
        assert!(euclide().time_perceptible.sleeping > 0.6);
        assert!(jedit().time_perceptible.waiting > 0.25);
        assert!((free_mind().time_perceptible.blocked - 0.12).abs() < 1e-9);
        assert!(arabeske().time_perceptible.gc >= 0.6);
        assert!((jfree_chart().time_perceptible.native - 0.24).abs() < 1e-9);
        assert!(jhot_draw().time_perceptible.library < 0.05);
        assert!(jmol().trigger_perceptible.output > 0.97);
        assert!(argo_uml().trigger_perceptible.input > 0.75);
        assert!(find_bugs().trigger_perceptible.asynchronous > 0.4);
        assert!(arabeske().trigger_perceptible.unspecified > 0.5);
        assert!(free_mind().occurrence.never > 0.9);
        assert!(gantt_project().occurrence.always > 0.55);
    }

    #[test]
    fn concurrent_apps_exceed_one_runnable_thread() {
        // Fig 7: only Arabeske, FindBugs and NetBeans exceed 1 runnable
        // thread during perceptible episodes.
        for p in standard_suite() {
            let gui = 1.0
                - p.time_perceptible.blocked
                - p.time_perceptible.waiting
                - p.time_perceptible.sleeping;
            let avg = gui + f64::from(p.background.count) * p.background.runnable_perceptible;
            let concurrent = matches!(p.name.as_str(), "Arabeske" | "FindBugs" | "NetBeans");
            assert_eq!(avg > 1.0, concurrent, "{}: {avg}", p.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("jmol").is_some());
        assert!(by_name("JMOL").is_some());
        assert!(by_name("photoshop").is_none());
    }
}
