//! Heap and garbage-collection model.
//!
//! A generational stop-the-world collector, matching the paper's platform
//! (HotSpot 1.6 in server mode with a stop-the-world collector): mutator
//! threads allocate into a young generation; when it fills, a minor
//! collection runs; surviving data is promoted, and when the old generation
//! fills, a major collection runs. `System.gc()` forces a major collection
//! immediately. Collections are bracketed JVMTI-style — the simulator's
//! sampler is suppressed inside the brackets, reproducing the sampling gap
//! visible in the paper's Fig 1.

use lagalyzer_model::{DurationNs, GcEvent, TimeNs};

use crate::rng::SimRng;

/// Configuration of the [`GcModel`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GcConfig {
    /// Young-generation capacity in bytes.
    pub young_capacity: u64,
    /// Old-generation capacity in bytes.
    pub old_capacity: u64,
    /// Fraction of young bytes surviving a minor collection.
    pub survival_rate: f64,
    /// Median pause of a minor collection.
    pub minor_pause: DurationNs,
    /// Median pause of a major collection.
    pub major_pause: DurationNs,
}

impl GcConfig {
    /// A configuration resembling the paper's 2 GB MacBook Pro: a small
    /// young generation so interactive allocation rates trigger regular
    /// minor collections.
    pub fn macbook_2009() -> Self {
        GcConfig {
            young_capacity: 16 << 20,
            old_capacity: 256 << 20,
            survival_rate: 0.08,
            minor_pause: DurationNs::from_millis(22),
            major_pause: DurationNs::from_millis(420),
        }
    }

    /// Derives the GUI-thread allocation rate (bytes/sec of *episode* time)
    /// that makes minor collections consume roughly `gc_fraction` of
    /// episode time. Inverting the steady-state: one minor pause `P` per
    /// `young/rate` seconds of mutation gives fraction `P/(P + young/rate)`.
    pub fn alloc_rate_for_gc_fraction(&self, gc_fraction: f64) -> u64 {
        if gc_fraction <= 0.0 {
            return 0;
        }
        let f = gc_fraction.min(0.9);
        let pause_s = self.minor_pause.as_secs_f64();
        // mutation seconds between collections
        let period_s = pause_s * (1.0 - f) / f;
        (self.young_capacity as f64 / period_s) as u64
    }
}

/// Mutable heap state advancing with simulated allocation.
#[derive(Clone, Debug)]
pub struct GcModel {
    config: GcConfig,
    young_used: u64,
    old_used: u64,
    events: Vec<GcEvent>,
}

/// The collection the heap demands after an allocation, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcDemand {
    /// No collection needed.
    None,
    /// A minor collection is due.
    Minor,
    /// A major collection is due.
    Major,
}

impl GcModel {
    /// Creates a heap with empty generations.
    pub fn new(config: GcConfig) -> Self {
        GcModel {
            config,
            young_used: 0,
            old_used: 0,
            events: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GcConfig {
        &self.config
    }

    /// Records `bytes` of allocation and reports whether a collection is
    /// now due. The caller decides *when* to run it (collections happen at
    /// safe points).
    pub fn allocate(&mut self, bytes: u64) -> GcDemand {
        self.young_used += bytes;
        if self.old_used >= self.config.old_capacity {
            GcDemand::Major
        } else if self.young_used >= self.config.young_capacity {
            GcDemand::Minor
        } else {
            GcDemand::None
        }
    }

    /// Runs a minor collection starting at `at`, returning the recorded
    /// event. Survivors are promoted to the old generation.
    pub fn run_minor(&mut self, at: TimeNs, rng: &mut SimRng) -> GcEvent {
        self.run_minor_within(at, TimeNs::MAX, rng)
            .expect("unbounded window always has room")
    }

    /// Runs a minor collection starting at `at`, clamping its pause so the
    /// event ends by `max_end` (collections happen at safe points inside a
    /// known enclosing interval). Returns `None` if the window cannot hold
    /// even a minimal 1 ms pause; the heap then stays full and the caller
    /// retries at the next safe point.
    pub fn run_minor_within(
        &mut self,
        at: TimeNs,
        max_end: TimeNs,
        rng: &mut SimRng,
    ) -> Option<GcEvent> {
        let pause = DurationNs::from_nanos(
            rng.log_normal(self.config.minor_pause.as_nanos() as f64, 0.3) as u64,
        )
        .max(DurationNs::from_millis(1));
        let end = (at + pause).min(max_end);
        if end <= at || end - at < DurationNs::from_millis(1) {
            return None;
        }
        let survivors = (self.young_used as f64 * self.config.survival_rate) as u64;
        self.old_used += survivors;
        self.young_used = 0;
        let event = GcEvent {
            start: at,
            end,
            major: false,
        };
        self.events.push(event);
        Some(event)
    }

    /// Runs a major collection starting at `at` (also used for explicit
    /// `System.gc()` calls), returning the recorded event.
    pub fn run_major(&mut self, at: TimeNs, rng: &mut SimRng) -> GcEvent {
        self.run_major_within(at, TimeNs::MAX, rng)
            .expect("unbounded window always has room")
    }

    /// Runs a major collection starting at `at`, clamped to end by
    /// `max_end`. Returns `None` if the window cannot hold a 1 ms pause.
    pub fn run_major_within(
        &mut self,
        at: TimeNs,
        max_end: TimeNs,
        rng: &mut SimRng,
    ) -> Option<GcEvent> {
        let pause = DurationNs::from_nanos(
            rng.log_normal(self.config.major_pause.as_nanos() as f64, 0.25) as u64,
        )
        .max(DurationNs::from_millis(50));
        let end = (at + pause).min(max_end);
        if end <= at || end - at < DurationNs::from_millis(1) {
            return None;
        }
        self.young_used = 0;
        self.old_used = (self.old_used as f64 * 0.25) as u64;
        let event = GcEvent {
            start: at,
            end,
            major: true,
        };
        self.events.push(event);
        Some(event)
    }

    /// Records an explicit `System.gc()` collection occupying exactly
    /// `[start, end)` — the script, not the heap, chose the window.
    pub fn record_explicit_major(&mut self, start: TimeNs, end: TimeNs) -> GcEvent {
        self.young_used = 0;
        self.old_used = (self.old_used as f64 * 0.25) as u64;
        let event = GcEvent {
            start,
            end,
            major: true,
        };
        self.events.push(event);
        event
    }

    /// All collections recorded so far, in execution order.
    pub fn events(&self) -> &[GcEvent] {
        &self.events
    }

    /// Consumes the model, yielding its event log.
    pub fn into_events(self) -> Vec<GcEvent> {
        self.events
    }

    /// Current young-generation occupancy in bytes (for tests).
    pub fn young_used(&self) -> u64 {
        self.young_used
    }

    /// Current old-generation occupancy in bytes (for tests).
    pub fn old_used(&self) -> u64 {
        self.old_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GcModel {
        GcModel::new(GcConfig::macbook_2009())
    }

    #[test]
    fn allocation_below_capacity_demands_nothing() {
        let mut m = model();
        assert_eq!(m.allocate(1024), GcDemand::None);
        assert_eq!(m.young_used(), 1024);
    }

    #[test]
    fn filling_young_demands_minor() {
        let mut m = model();
        let cap = m.config().young_capacity;
        assert_eq!(m.allocate(cap), GcDemand::Minor);
    }

    #[test]
    fn minor_collection_promotes_and_empties_young() {
        let mut m = model();
        let cap = m.config().young_capacity;
        m.allocate(cap);
        let mut rng = SimRng::new(0);
        let event = m.run_minor(TimeNs::from_millis(100), &mut rng);
        assert!(!event.major);
        assert_eq!(m.young_used(), 0);
        let expected = (cap as f64 * m.config().survival_rate) as u64;
        assert_eq!(m.old_used(), expected);
        assert!(event.duration() >= DurationNs::from_millis(1));
    }

    #[test]
    fn old_gen_pressure_demands_major() {
        let mut m = model();
        let mut rng = SimRng::new(0);
        let young = m.config().young_capacity;
        let mut guard = 0;
        loop {
            match m.allocate(young) {
                GcDemand::Major => break,
                _ => {
                    m.run_minor(TimeNs::from_millis(guard), &mut rng);
                }
            }
            guard += 1;
            assert!(guard < 100_000, "old generation never filled");
        }
        let before = m.old_used();
        m.run_major(TimeNs::from_secs(10), &mut rng);
        assert!(m.old_used() < before);
        assert_eq!(m.young_used(), 0);
    }

    #[test]
    fn events_are_recorded_in_order() {
        let mut m = model();
        let mut rng = SimRng::new(1);
        m.run_minor(TimeNs::from_millis(10), &mut rng);
        m.run_major(TimeNs::from_millis(500), &mut rng);
        let events = m.events();
        assert_eq!(events.len(), 2);
        assert!(!events[0].major);
        assert!(events[1].major);
        assert!(events[0].end <= events[1].start);
        assert_eq!(m.into_events().len(), 2);
    }

    #[test]
    fn major_pause_exceeds_minor_typically() {
        let mut m = model();
        let mut rng = SimRng::new(2);
        let minor = m.run_minor(TimeNs::ZERO, &mut rng).duration();
        let major = m.run_major(TimeNs::from_secs(1), &mut rng).duration();
        assert!(major > minor, "major {major} vs minor {minor}");
    }

    #[test]
    fn alloc_rate_inversion_is_consistent() {
        let cfg = GcConfig::macbook_2009();
        // Target 20% GC time: simulate the steady state and verify the
        // fraction comes out near the target.
        let target = 0.20;
        let rate = cfg.alloc_rate_for_gc_fraction(target);
        let pause = cfg.minor_pause.as_secs_f64();
        let period = cfg.young_capacity as f64 / rate as f64;
        let achieved = pause / (pause + period);
        assert!((achieved - target).abs() < 0.02, "achieved {achieved}");
    }

    #[test]
    fn zero_gc_fraction_means_no_allocation() {
        assert_eq!(GcConfig::macbook_2009().alloc_rate_for_gc_fraction(0.0), 0);
    }
}

#[cfg(test)]
mod clamp_tests {
    use super::*;

    #[test]
    fn minor_within_clamps_to_window() {
        let mut m = GcModel::new(GcConfig::macbook_2009());
        m.allocate(m.config().young_capacity);
        let mut rng = SimRng::new(3);
        let at = TimeNs::from_millis(100);
        let max_end = TimeNs::from_millis(103);
        let event = m.run_minor_within(at, max_end, &mut rng).unwrap();
        assert!(event.end <= max_end);
        assert!(event.duration() >= DurationNs::from_millis(1));
        assert_eq!(m.young_used(), 0, "collection ran");
    }

    #[test]
    fn minor_within_defers_when_no_room() {
        let mut m = GcModel::new(GcConfig::macbook_2009());
        m.allocate(m.config().young_capacity);
        let before = m.young_used();
        let mut rng = SimRng::new(3);
        let at = TimeNs::from_millis(100);
        // Less than the 1 ms minimum pause of room.
        let result = m.run_minor_within(at, at + DurationNs::from_micros(500), &mut rng);
        assert!(result.is_none());
        assert_eq!(m.young_used(), before, "heap untouched when deferred");
        assert!(m.events().is_empty());
    }

    #[test]
    fn major_within_clamps_and_defers() {
        let mut m = GcModel::new(GcConfig::macbook_2009());
        let mut rng = SimRng::new(5);
        let at = TimeNs::from_millis(10);
        let clamped = m
            .run_major_within(at, at + DurationNs::from_millis(5), &mut rng)
            .unwrap();
        assert!(clamped.duration() <= DurationNs::from_millis(5));
        assert!(clamped.major);
        let deferred = m.run_major_within(at, at, &mut rng);
        assert!(deferred.is_none());
    }

    #[test]
    fn explicit_major_uses_exact_window() {
        let mut m = GcModel::new(GcConfig::macbook_2009());
        m.allocate(12345);
        let event = m.record_explicit_major(TimeNs::from_millis(5), TimeNs::from_millis(605));
        assert!(event.major);
        assert_eq!(event.duration(), DurationNs::from_millis(600));
        assert_eq!(m.young_used(), 0);
        assert_eq!(m.events().len(), 1);
    }
}
