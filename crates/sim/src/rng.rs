//! Seeded randomness helpers.
//!
//! Everything the simulator draws goes through [`SimRng`] so that a session
//! is a pure function of `(profile, session index, seed)` — the property
//! the determinism tests and the trace-codec benchmarks rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the distribution helpers the simulator
/// needs (uniform, Bernoulli, log-normal, Zipf weights).
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each episode
    /// template its own stream so template order doesn't perturb draws.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Returns `lo` when the
    /// range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            self.inner.gen_range(lo..=hi)
        }
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A standard normal deviate via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by drawing from (0, 1].
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A log-normal deviate with the given *median* and shape `sigma`
    /// (sigma of the underlying normal). Medians are easier to calibrate
    /// against the paper's reported episode durations than means.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.standard_normal()).exp()
    }

    /// Picks an index according to `weights` (need not be normalized).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "weights must be non-empty with positive sum"
        );
        let mut needle = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            needle -= w;
            if needle < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

/// Zipf-like weights `1 / (rank+1)^s` for `n` ranks. With `s ≈ 1` the top
/// 20% of ranks carry roughly 80% of the mass for realistic `n`, matching
/// the Pareto shape of the paper's Fig 3.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(s))
        .collect()
}

/// Distributes `total` items over `weights.len()` buckets proportionally to
/// the weights, guaranteeing at least `min_each` per bucket when possible
/// and conserving the total exactly.
pub fn apportion(total: u64, weights: &[f64], min_each: u64) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let n = weights.len() as u64;
    let floor_total = min_each.saturating_mul(n).min(total);
    let remaining = total - floor_total;
    let weight_sum: f64 = weights.iter().sum();
    let mut out: Vec<u64> = weights
        .iter()
        .map(|w| {
            if weight_sum > 0.0 {
                ((w / weight_sum) * remaining as f64).floor() as u64 + floor_total / n
            } else {
                floor_total / n
            }
        })
        .collect();
    // Fix rounding drift: hand leftovers to the heaviest buckets.
    let assigned: u64 = out.iter().sum();
    let mut leftover = total.saturating_sub(assigned);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).expect("NaN weight"));
    let mut i = 0;
    while leftover > 0 {
        out[order[i % order.len()]] += 1;
        leftover -= 1;
        i += 1;
    }
    // If we overshot (total < n * min_each), trim from the lightest.
    let mut excess: u64 = out.iter().sum::<u64>().saturating_sub(total);
    let mut j = order.len();
    while excess > 0 && j > 0 {
        j -= 1;
        let idx = order[j];
        let cut = excess.min(out[idx]);
        out[idx] -= cut;
        excess -= cut;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.range_u64(0, u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.range_u64(0, u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut root1 = SimRng::new(9);
        let mut root2 = SimRng::new(9);
        let mut f1 = root1.fork(3);
        let mut f2 = root2.fork(3);
        assert_eq!(f1.range_u64(0, u64::MAX), f2.range_u64(0, u64::MAX));
        let mut g = root1.fork(4);
        assert_ne!(f1.range_u64(0, u64::MAX), g.range_u64(0, u64::MAX));
    }

    #[test]
    fn range_handles_degenerate_bounds() {
        let mut r = SimRng::new(0);
        assert_eq!(r.range_u64(5, 5), 5);
        assert_eq!(r.range_u64(9, 3), 9);
    }

    #[test]
    fn unit_in_bounds() {
        let mut r = SimRng::new(0);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0), "clamped above 1");
        assert!(!r.chance(-1.0), "clamped below 0");
    }

    #[test]
    fn log_normal_median_roughly_holds() {
        let mut r = SimRng::new(13);
        let mut draws: Vec<f64> = (0..4001).map(|_| r.log_normal(100.0, 0.5)).collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[draws.len() / 2];
        assert!((70.0..140.0).contains(&median), "median {median}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::new(5);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            counts[r.weighted_index(&[8.0, 1.0, 1.0])] += 1;
        }
        assert!(counts[0] > counts[1] * 3);
        assert!(counts[0] > counts[2] * 3);
    }

    #[test]
    fn zipf_is_pareto_like() {
        let w = zipf_weights(100, 1.0);
        let total: f64 = w.iter().sum();
        let top20: f64 = w[..20].iter().sum();
        let share = top20 / total;
        assert!((0.6..0.95).contains(&share), "top-20% share {share}");
    }

    #[test]
    fn apportion_conserves_total() {
        let w = zipf_weights(17, 1.0);
        for total in [0u64, 1, 16, 17, 1000, 98765] {
            let parts = apportion(total, &w, 1);
            assert_eq!(parts.iter().sum::<u64>(), total, "total {total}");
        }
    }

    #[test]
    fn apportion_min_each_respected_when_possible() {
        let parts = apportion(100, &zipf_weights(10, 1.0), 2);
        assert!(parts.iter().all(|&p| p >= 2), "{parts:?}");
        assert_eq!(parts.iter().sum::<u64>(), 100);
    }

    #[test]
    fn apportion_empty_weights() {
        assert!(apportion(10, &[], 1).is_empty());
    }

    #[test]
    fn standard_normal_is_centered() {
        let mut r = SimRng::new(21);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.standard_normal()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
