//! Application profiles — the calibration surface of the simulator.
//!
//! One [`AppProfile`] fully describes a simulated application: the Table II
//! identity (name, version, class count), the session-scale targets from
//! Table III, and the behavioural mixes from Figs 4–8. Profiles are passive
//! specification data, so their fields are public; the 14 calibrated
//! instances live in [`crate::apps`].

use lagalyzer_model::DurationNs;

/// Episode-trigger mix (the paper's Fig 5): what fraction of episodes are
/// triggered by input handling, output production, asynchronous
/// notifications, or nothing the tracer could see.
///
/// Fractions need not sum exactly to 1; they are renormalized on use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriggerMix {
    /// Listener-triggered (mouse, keyboard) episodes.
    pub input: f64,
    /// Paint-triggered (rendering) episodes.
    pub output: f64,
    /// Episodes triggered by background-thread notifications.
    pub asynchronous: f64,
    /// Episodes with no trigger child above the tracer's filter.
    pub unspecified: f64,
}

impl TriggerMix {
    /// The mix as a weight array in `[input, output, async, unspecified]`
    /// order.
    pub fn weights(&self) -> [f64; 4] {
        [self.input, self.output, self.asynchronous, self.unspecified]
    }
}

/// Per-pattern perceptibility-occurrence mix (the paper's Fig 4): the
/// fraction of patterns whose episodes are always / sometimes / once /
/// never perceptibly slow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OccurrenceMix {
    /// Every episode of the pattern is perceptible.
    pub always: f64,
    /// Some but not all episodes are perceptible.
    pub sometimes: f64,
    /// Exactly one episode (typically the first) is perceptible.
    pub once: f64,
    /// No episode is perceptible.
    pub never: f64,
}

/// Where GUI-thread time goes during perceptible episodes (Fig 6) and which
/// states it sits in (Fig 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeMix {
    /// Fraction of sampled time with the top frame in runtime-library code
    /// (the remainder is application code).
    pub library: f64,
    /// Fraction of episode time inside garbage collections.
    pub gc: f64,
    /// Fraction of episode time inside native (JNI) calls.
    pub native: f64,
    /// Fraction of samples with the GUI thread blocked on a monitor.
    pub blocked: f64,
    /// Fraction of samples with the GUI thread in `Object.wait()` /
    /// `LockSupport.park()`.
    pub waiting: f64,
    /// Fraction of samples with the GUI thread in `Thread.sleep()` —
    /// in the paper's study always Apple's combo-box blink animation.
    pub sleeping: f64,
}

/// Background-thread population and activity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackgroundThreads {
    /// Number of background threads that show up in samples.
    pub count: u32,
    /// Probability that a given background thread is runnable at a sample
    /// taken during a non-perceptible episode.
    pub runnable_all: f64,
    /// Same probability during perceptible episodes. Above `1/count` means
    /// real competition with the GUI thread (Arabeske, FindBugs, NetBeans
    /// in the paper).
    pub runnable_perceptible: f64,
}

/// Session-scale targets, averaged per session as in Table III.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SessionScale {
    /// End-to-end session duration in seconds ("E2E").
    pub e2e_secs: u64,
    /// Fraction of end-to-end time spent in episodes ("In-Eps").
    pub in_episode_fraction: f64,
    /// Episodes below the tracer filter ("< 3ms").
    pub short_episodes: u64,
    /// Traced episodes ("≥ 3ms").
    pub traced_episodes: u64,
    /// Traced episodes whose dispatch interval has children ("#Eps"); the
    /// remainder are structureless and excluded from pattern statistics.
    pub structured_episodes: u64,
    /// Perceptible episodes ("≥ 100ms").
    pub perceptible_episodes: u64,
    /// Distinct patterns ("Dist").
    pub distinct_patterns: u64,
    /// Fraction of patterns with a single episode ("One-Ep").
    pub singleton_fraction: f64,
    /// Mean descendants of the dispatch interval over patterns ("Descs").
    pub tree_size: u64,
    /// Mean interval-tree depth over patterns ("Depth").
    pub tree_depth: u64,
}

/// Everything the simulator needs to synthesize sessions of one
/// application.
#[derive(Clone, Debug)]
pub struct AppProfile {
    /// Application name as in Table II (e.g. "GanttProject").
    pub name: String,
    /// Version string as in Table II.
    pub version: String,
    /// Class count as in Table II.
    pub classes: u32,
    /// One-line description as in Table II.
    pub description: String,
    /// Root package for generated application class names.
    pub package: String,
    /// Session-scale targets.
    pub scale: SessionScale,
    /// Trigger mix over perceptible episodes (Fig 5, lower graph).
    pub trigger_perceptible: TriggerMix,
    /// Trigger mix over all traced episodes (Fig 5, upper graph).
    pub trigger_all: TriggerMix,
    /// Occurrence mix over patterns (Fig 4).
    pub occurrence: OccurrenceMix,
    /// Time mixes during perceptible episodes (Figs 6 and 8).
    pub time_perceptible: TimeMix,
    /// Time mixes during short episodes (upper graphs of Figs 6 and 8;
    /// the paper shows almost no blocking there).
    pub time_all: TimeMix,
    /// Background-thread behaviour (Fig 7).
    pub background: BackgroundThreads,
    /// True if the application calls `System.gc()` explicitly during
    /// episodes (Arabeske), producing "empty" perceptible episodes whose
    /// only child is a major GC.
    pub explicit_major_gc: bool,
    /// Fraction of output patterns routed through the Swing repaint
    /// manager, which materializes as an `async(paint)` tree that the
    /// analysis must reclassify as output (paper §IV-C footnote).
    pub repaint_manager_fraction: f64,
    /// Median duration of perceptible episodes in milliseconds.
    pub perceptible_median_ms: u64,
    /// Sampling cadence of the call-stack sampler.
    pub sample_period: DurationNs,
    /// Extra plumbing frames drawn beneath each sampled stack.
    ///
    /// The default profiles keep this at zero and emit only the
    /// semantically meaningful top frames, which keeps unit fixtures
    /// small. Real EDT stacks in the paper's Swing subjects run tens of
    /// frames deep (event pumps, repaint managers, layout recursion), so
    /// workloads that should stress ingest realistically — the bench
    /// corpus in particular — raise this to model that depth.
    pub extra_stack_frames: u64,
}

impl AppProfile {
    /// Number of sessions the paper records per application.
    pub const SESSIONS_PER_APP: u32 = 4;

    /// The perceptibility threshold used throughout the study.
    pub fn perceptible_threshold(&self) -> DurationNs {
        DurationNs::PERCEPTIBLE_DEFAULT
    }

    /// The total in-episode time budget for one session, derived from the
    /// Table III targets (E2E x In-Eps). The runner spends this budget on
    /// traced episodes first and attributes the remainder to the
    /// filtered-out short episodes.
    pub fn in_episode_budget(&self) -> DurationNs {
        DurationNs::from_secs(self.scale.e2e_secs).mul_f64(self.scale.in_episode_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> AppProfile {
        AppProfile {
            name: "Sample".into(),
            version: "1.0".into(),
            classes: 100,
            description: "sample app".into(),
            package: "org.sample".into(),
            scale: SessionScale {
                e2e_secs: 480,
                in_episode_fraction: 0.25,
                short_episodes: 1000,
                traced_episodes: 200,
                structured_episodes: 180,
                perceptible_episodes: 20,
                distinct_patterns: 30,
                singleton_fraction: 0.5,
                tree_size: 8,
                tree_depth: 5,
            },
            trigger_perceptible: TriggerMix {
                input: 0.4,
                output: 0.5,
                asynchronous: 0.05,
                unspecified: 0.05,
            },
            trigger_all: TriggerMix {
                input: 0.5,
                output: 0.4,
                asynchronous: 0.05,
                unspecified: 0.05,
            },
            occurrence: OccurrenceMix {
                always: 0.2,
                sometimes: 0.05,
                once: 0.05,
                never: 0.7,
            },
            time_perceptible: TimeMix {
                library: 0.5,
                gc: 0.1,
                native: 0.05,
                blocked: 0.02,
                waiting: 0.03,
                sleeping: 0.05,
            },
            time_all: TimeMix {
                library: 0.5,
                gc: 0.05,
                native: 0.05,
                blocked: 0.0,
                waiting: 0.0,
                sleeping: 0.01,
            },
            background: BackgroundThreads {
                count: 2,
                runnable_all: 0.1,
                runnable_perceptible: 0.05,
            },
            explicit_major_gc: false,
            repaint_manager_fraction: 0.1,
            perceptible_median_ms: 220,
            sample_period: DurationNs::from_millis(10),
            extra_stack_frames: 0,
        }
    }

    #[test]
    fn trigger_weights_order() {
        let m = TriggerMix {
            input: 0.1,
            output: 0.2,
            asynchronous: 0.3,
            unspecified: 0.4,
        };
        assert_eq!(m.weights(), [0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    fn budget_is_e2e_times_fraction() {
        let p = sample_profile();
        assert_eq!(p.in_episode_budget(), DurationNs::from_secs(120));
        let mut bigger = sample_profile();
        bigger.scale.in_episode_fraction = 0.5;
        assert!(bigger.in_episode_budget() > p.in_episode_budget());
    }

    #[test]
    fn threshold_is_100ms() {
        assert_eq!(
            sample_profile().perceptible_threshold(),
            DurationNs::from_millis(100)
        );
    }
}
