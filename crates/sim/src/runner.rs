//! Session assembly: scheduling template executions over a virtual
//! session, feeding them through the tracer-side filter, and packaging the
//! result as a [`SessionTrace`].

use lagalyzer_model::prelude::*;
use lagalyzer_trace::TraceFilter;

use crate::exec::{execute_template, ExecContext};
use crate::gc::{GcConfig, GcDemand, GcModel};
use crate::names::NamePool;
use crate::profile::AppProfile;
use crate::rng::SimRng;
use crate::template::{build_library, EpisodeTemplate, OccurrenceClass};

/// One simulated application: its profile and the recorded sessions.
#[derive(Clone, Debug)]
pub struct SimulatedApp {
    /// The profile the sessions were synthesized from.
    pub profile: AppProfile,
    /// One trace per session (the paper records four per application).
    pub sessions: Vec<SessionTrace>,
}

/// How many genuinely executed sub-threshold episodes each session feeds
/// through the tracer filter; the (much larger) remainder is accounted for
/// in bulk, exactly as a real tracer would only report a count.
const REAL_SHORT_EPISODES: u64 = 200;

/// Simulates one interactive session of `profile`.
///
/// Sessions are deterministic in `(profile, session_index, seed)`.
pub fn simulate_session(profile: &AppProfile, session_index: u32, seed: u64) -> SessionTrace {
    simulate_session_perturbed(profile, session_index, seed, DurationNs::ZERO)
}

/// Like [`simulate_session`], but with a per-event tracer instrumentation
/// overhead — the knob of the perturbation study the paper leaves to
/// future work (§V). Overhead stretches every episode in proportion to
/// its interval-tree size, exactly as enter/exit instrumentation would.
pub fn simulate_session_perturbed(
    profile: &AppProfile,
    session_index: u32,
    seed: u64,
    tracer_overhead_per_event: DurationNs,
) -> SessionTrace {
    // The template library depends on the application and study seed only:
    // all sessions of one application share their patterns, exactly as the
    // paper's four sessions per application do. Scheduling and execution
    // then vary per session.
    let mut library_rng = session_rng(profile, u32::MAX, seed);
    // Library construction interns a handful of names per distinct
    // pattern (listener, paint chain, natives); pre-sizing from the
    // pattern target avoids rehashing the table while it grows.
    let mut symbols = SymbolTable::with_capacity(profile.scale.distinct_patterns as usize * 4 + 64);
    let library = build_library(profile, &mut symbols, &mut library_rng);
    let mut rng = session_rng(profile, session_index, seed);
    let pool = NamePool::new(&profile.package);
    let mut gc = GcModel::new(GcConfig::macbook_2009());
    let gui_thread = ThreadId::from_raw(0);

    // --- plan the episode schedule ---------------------------------------
    let plan = plan_schedule(profile, &library, &mut rng);

    // --- execute ----------------------------------------------------------
    let e2e = DurationNs::from_secs(profile.scale.e2e_secs);
    let budget = profile.in_episode_budget();
    let think_total = e2e.saturating_sub(budget);
    // log_normal takes a median; divide out exp(sigma^2/2) so the *mean*
    // think time lands on budget (otherwise sessions overshoot E2E by the
    // log-normal mean/median ratio).
    const GAP_SIGMA: f64 = 0.9;
    let gap_mean_ns = think_total.as_nanos() as f64 / (plan.len().max(1) as f64);
    let gap_median_ns = gap_mean_ns * (-GAP_SIGMA * GAP_SIGMA / 2.0).exp();
    let bg_alloc_rate = library.first().map_or(0, |t| t.alloc_rate / 5);

    let mut filter = TraceFilter::new(DurationNs::TRACE_FILTER_DEFAULT);
    let mut episodes = Vec::new();
    let mut cursor = TimeNs::from_millis(50);
    for (next_id, item) in plan.iter().enumerate() {
        let next_id = next_id as u32;
        // Think time before the episode; background threads keep
        // allocating, so collections also happen between episodes.
        let gap =
            DurationNs::from_nanos(rng.log_normal(gap_median_ns, GAP_SIGMA).max(100_000.0) as u64);
        if bg_alloc_rate > 0 {
            let bytes = (bg_alloc_rate as f64 * gap.as_secs_f64()) as u64;
            if gc.allocate(bytes) != GcDemand::None {
                let at = cursor + gap / 2;
                let _ = gc.run_minor_within(at, at + gap / 4, &mut rng);
            }
        }
        cursor += gap;

        let mut ctx = ExecContext {
            symbols: &mut symbols,
            gc: &mut gc,
            rng: &mut rng,
            pool: &pool,
            gui_thread,
            background: profile.background,
            sample_period: profile.sample_period,
            extra_stack_frames: profile.extra_stack_frames,
            tracer_overhead_per_event,
        };
        let episode = match item {
            PlanItem::Template { index, slow } => execute_template(
                &library[*index],
                EpisodeId::from_raw(next_id),
                cursor,
                *slow,
                &mut ctx,
            ),
            PlanItem::Filler => filler_episode(EpisodeId::from_raw(next_id), cursor, &mut ctx),
            PlanItem::Short => short_episode(EpisodeId::from_raw(next_id), cursor, &mut ctx),
        };
        cursor = episode.end();
        if let Some(kept) = filter.admit(episode) {
            episodes.push(kept);
        }
    }

    // --- package ----------------------------------------------------------
    let end_to_end = e2e.max(cursor.saturating_since(TimeNs::ZERO) + DurationNs::from_secs(1));
    let meta = SessionMeta {
        application: profile.name.clone(),
        session: SessionId::from_raw(session_index),
        gui_thread,
        end_to_end,
        filter_threshold: DurationNs::TRACE_FILTER_DEFAULT,
    };
    let mut builder = SessionTraceBuilder::new(meta, symbols);
    let traced_time: DurationNs = episodes.iter().map(Episode::duration).sum();
    for episode in episodes {
        builder
            .push_episode(episode)
            .expect("schedule is time-ordered");
    }
    // Real filtered episodes, plus the bulk remainder with its share of the
    // in-episode budget.
    let (real_short, real_short_time) = filter.take_dropped();
    let bulk_short = profile.scale.short_episodes.saturating_sub(real_short);
    let bulk_time = budget
        .saturating_sub(traced_time)
        .saturating_sub(real_short_time)
        .max(DurationNs::from_micros(20) * bulk_short);
    builder.add_short_episodes(real_short + bulk_short, real_short_time + bulk_time);
    for event in gc.into_events() {
        builder.push_gc(event);
    }
    builder.finish()
}

/// Simulates the full 14-application suite, four sessions each.
pub fn simulate_suite(profiles: &[AppProfile], seed: u64) -> Vec<SimulatedApp> {
    profiles
        .iter()
        .map(|profile| SimulatedApp {
            profile: profile.clone(),
            sessions: (0..AppProfile::SESSIONS_PER_APP)
                .map(|i| simulate_session(profile, i, seed))
                .collect(),
        })
        .collect()
}

/// Simulates a multi-session corpus of one application: `sessions`
/// consecutive session indices, deterministic in `(profile, seed)` —
/// the generation path behind `simulate --sessions N`, whose output the
/// CLI packs into one `.lgzc`.
pub fn simulate_corpus(profile: &AppProfile, sessions: u32, seed: u64) -> Vec<SessionTrace> {
    (0..sessions)
        .map(|i| simulate_session(profile, i, seed))
        .collect()
}

/// One planned episode execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PlanItem {
    /// Execute template `index`; `slow` selects the perceptible model.
    Template { index: usize, slow: bool },
    /// A structureless traced episode (bare dispatch).
    Filler,
    /// A sub-threshold episode that the tracer filter will drop.
    Short,
}

/// Expands the template library into a shuffled session schedule that
/// realizes each template's occurrence class.
fn plan_schedule(
    profile: &AppProfile,
    library: &[EpisodeTemplate],
    rng: &mut SimRng,
) -> Vec<PlanItem> {
    let mut plan = Vec::new();
    for (index, template) in library.iter().enumerate() {
        let n = template.episodes_per_session;
        let slow_count = match template.occurrence {
            OccurrenceClass::Always => n,
            OccurrenceClass::Never => 0,
            OccurrenceClass::Once => 1.min(n),
            // A rounded-to-zero count simply means this template never
            // gets slow in this session (it will classify as "never").
            OccurrenceClass::Sometimes => ((n as f64) * template.slow_fraction).round() as u64,
        };
        for k in 0..n {
            plan.push(PlanItem::Template {
                index,
                slow: k < slow_count,
            });
        }
    }
    let filler = profile
        .scale
        .traced_episodes
        .saturating_sub(plan.len() as u64);
    plan.extend(std::iter::repeat_n(PlanItem::Filler, filler as usize));
    plan.extend(std::iter::repeat_n(
        PlanItem::Short,
        REAL_SHORT_EPISODES.min(profile.scale.short_episodes) as usize,
    ));

    // Fisher–Yates shuffle.
    for i in (1..plan.len()).rev() {
        let j = rng.index(i + 1);
        plan.swap(i, j);
    }

    // "Once" templates must run their slow execution first.
    ensure_once_slow_first(library, &mut plan);
    plan
}

/// Moves each "once" template's slow execution to that template's first
/// scheduled slot (initialization happens on first use).
fn ensure_once_slow_first(library: &[EpisodeTemplate], plan: &mut [PlanItem]) {
    for (index, template) in library.iter().enumerate() {
        if template.occurrence != OccurrenceClass::Once {
            continue;
        }
        let mut first_slot = None;
        let mut slow_slot = None;
        for (pos, item) in plan.iter().enumerate() {
            if let PlanItem::Template { index: i, slow } = item {
                if *i == index {
                    if first_slot.is_none() {
                        first_slot = Some(pos);
                    }
                    if *slow {
                        slow_slot = Some(pos);
                    }
                }
            }
        }
        if let (Some(first), Some(slow)) = (first_slot, slow_slot) {
            plan.swap(first, slow);
        }
    }
}

/// A structureless traced episode: a dispatch with no children, fast.
fn filler_episode(id: EpisodeId, start: TimeNs, ctx: &mut ExecContext<'_>) -> Episode {
    let ms = ctx.rng.log_normal(6.0, 0.6).clamp(3.2, 60.0);
    let end = start + DurationNs::from_nanos((ms * 1e6) as u64);
    let mut b = IntervalTreeBuilder::new();
    b.enter(IntervalKind::Dispatch, None, start)
        .expect("fresh builder");
    b.exit(end).expect("root exit");
    EpisodeBuilder::new(id, ctx.gui_thread)
        .tree(b.finish().expect("bare dispatch"))
        .build()
        .expect("no samples to violate the window")
}

/// A sub-threshold episode destined for the tracer filter.
fn short_episode(id: EpisodeId, start: TimeNs, ctx: &mut ExecContext<'_>) -> Episode {
    let us = ctx.rng.log_normal(250.0, 0.8).clamp(20.0, 2_800.0);
    let end = start + DurationNs::from_nanos((us * 1e3) as u64);
    let mut b = IntervalTreeBuilder::new();
    b.enter(IntervalKind::Dispatch, None, start)
        .expect("fresh builder");
    b.exit(end).expect("root exit");
    EpisodeBuilder::new(id, ctx.gui_thread)
        .tree(b.finish().expect("bare dispatch"))
        .build()
        .expect("no samples to violate the window")
}

/// Mixes the profile name, session index, and user seed into one RNG seed.
fn session_rng(profile: &AppProfile, session_index: u32, seed: u64) -> SimRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in profile.name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SimRng::new(
        h ^ seed.rotate_left(17)
            ^ (u64::from(session_index) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use lagalyzer_trace::binary;

    #[test]
    fn session_is_deterministic() {
        let p = apps::crossword_sage();
        let a = simulate_session(&p, 0, 7);
        let b = simulate_session(&p, 0, 7);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        binary::write(&a, &mut ba).unwrap();
        binary::write(&b, &mut bb).unwrap();
        assert_eq!(ba, bb, "same seed must give identical trace bytes");
    }

    #[test]
    fn different_sessions_differ() {
        let p = apps::crossword_sage();
        let a = simulate_session(&p, 0, 7);
        let b = simulate_session(&p, 1, 7);
        assert_ne!(a.episodes().len(), 0);
        let da: Vec<u64> = a
            .episodes()
            .iter()
            .map(|e| e.duration().as_nanos())
            .collect();
        let db: Vec<u64> = b
            .episodes()
            .iter()
            .map(|e| e.duration().as_nanos())
            .collect();
        assert_ne!(da, db);
    }

    #[test]
    fn extra_stack_frames_deepen_stacks_and_zero_is_the_status_quo() {
        fn max_depth(trace: &SessionTrace) -> usize {
            trace
                .episodes()
                .iter()
                .flat_map(lagalyzer_model::Episode::samples)
                .flat_map(|snap| snap.threads.iter())
                .map(|t| t.stack.len())
                .max()
                .unwrap_or(0)
        }
        fn bytes(trace: &SessionTrace) -> Vec<u8> {
            let mut out = Vec::new();
            binary::write(trace, &mut out).unwrap();
            out
        }

        let base = apps::crossword_sage();
        assert_eq!(
            base.extra_stack_frames, 0,
            "calibrated profiles stay shallow"
        );
        let mut deep = base.clone();
        deep.extra_stack_frames = 24;

        let shallow = simulate_session(&base, 0, 7);
        let deepened = simulate_session(&deep, 0, 7);
        assert!(
            max_depth(&deepened) > max_depth(&shallow) + 8,
            "24 plumbing frames must visibly deepen stacks: {} vs {}",
            max_depth(&deepened),
            max_depth(&shallow)
        );

        // Zero draws nothing from the random stream, so a profile with the
        // knob explicitly at zero reproduces the default bit-for-bit.
        let mut zeroed = deep;
        zeroed.extra_stack_frames = 0;
        assert_eq!(bytes(&simulate_session(&zeroed, 0, 7)), bytes(&shallow));
    }

    #[test]
    fn traced_count_near_target() {
        let p = apps::jedit();
        let trace = simulate_session(&p, 0, 1);
        let target = p.scale.traced_episodes as f64;
        let actual = trace.episodes().len() as f64;
        assert!(
            (actual / target - 1.0).abs() < 0.1,
            "traced {actual} target {target}"
        );
    }

    #[test]
    fn perceptible_count_near_target() {
        for p in [apps::jmol(), apps::gantt_project(), apps::jedit()] {
            let trace = simulate_session(&p, 0, 1);
            let threshold = DurationNs::PERCEPTIBLE_DEFAULT;
            let actual = trace.perceptible_episodes(threshold).count() as f64;
            let target = p.scale.perceptible_episodes as f64;
            assert!(
                (0.5..1.6).contains(&(actual / target)),
                "{}: perceptible {actual} target {target}",
                p.name
            );
        }
    }

    #[test]
    fn short_count_matches_table3_exactly() {
        let p = apps::laoe();
        let trace = simulate_session(&p, 0, 1);
        assert_eq!(trace.short_episode_count(), p.scale.short_episodes);
    }

    #[test]
    fn in_episode_fraction_near_target() {
        for p in [apps::laoe(), apps::euclide(), apps::crossword_sage()] {
            let trace = simulate_session(&p, 2, 3);
            let actual = trace.in_episode_fraction();
            let target = p.scale.in_episode_fraction;
            assert!(
                (actual - target).abs() < 0.12,
                "{}: in-eps {actual:.3} target {target}",
                p.name
            );
        }
    }

    #[test]
    fn episodes_are_time_ordered_and_disjoint() {
        let trace = simulate_session(&apps::free_mind(), 0, 5);
        for pair in trace.episodes().windows(2) {
            assert!(pair[0].end() <= pair[1].start());
        }
    }

    #[test]
    fn traces_round_trip_through_codec() {
        let trace = simulate_session(&apps::swing_set(), 0, 2);
        let mut buf = Vec::new();
        binary::write(&trace, &mut buf).unwrap();
        let back = binary::read(&mut buf.as_slice()).unwrap();
        assert_eq!(back.episodes().len(), trace.episodes().len());
        assert_eq!(back.short_episode_count(), trace.short_episode_count());
    }

    #[test]
    fn suite_covers_all_profiles_and_sessions() {
        // Two small apps to keep the test quick.
        let profiles = vec![apps::crossword_sage(), apps::jfree_chart()];
        let suite = simulate_suite(&profiles, 11);
        assert_eq!(suite.len(), 2);
        for app in &suite {
            assert_eq!(app.sessions.len(), AppProfile::SESSIONS_PER_APP as usize);
            for s in &app.sessions {
                assert_eq!(s.meta().application, app.profile.name);
                assert!(!s.episodes().is_empty());
            }
        }
    }

    #[test]
    fn gc_events_recorded_for_allocating_apps() {
        let trace = simulate_session(&apps::argo_uml(), 0, 3);
        assert!(
            !trace.gc_events().is_empty(),
            "ArgoUML's allocation rate must trigger collections"
        );
    }
}
