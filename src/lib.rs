//! LagAlyzer — a latency profile analysis and visualization toolkit.
//!
//! This umbrella crate re-exports the whole workspace, reproducing
//! *"LagAlyzer: A latency profile analysis and visualization tool"*
//! (Adamoli, Jovic, Hauswirth — ISPASS 2010):
//!
//! * [`model`] — the trace data model (episodes, interval trees, samples);
//! * [`trace`] — the LiLa-like trace format (binary + text codecs, tracer
//!   filter);
//! * [`sim`] — the interactive-session simulator standing in for the 14
//!   real Swing applications and the LiLa profiler;
//! * [`core`] — the paper's contribution: pattern mining and the
//!   trigger / location / concurrency / cause characterization analyses;
//! * [`viz`] — episode sketches and study charts (SVG + ASCII);
//! * [`report`] — experiment drivers regenerating every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use lagalyzer::core::prelude::*;
//! use lagalyzer::sim::{apps, runner};
//!
//! // Simulate one session of the crossword editor and characterize it.
//! let trace = runner::simulate_session(&apps::crossword_sage(), 0, 42);
//! let session = AnalysisSession::new(trace, AnalysisConfig::default());
//! let stats = SessionStats::compute(&session);
//! assert!(stats.perceptible_count > 0);
//!
//! let patterns = session.mine_patterns();
//! let browser = PatternBrowser::new(&session, &patterns);
//! assert!(!browser.rows().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lagalyzer_check as check;
pub use lagalyzer_core as core;
pub use lagalyzer_model as model;
pub use lagalyzer_report as report;
pub use lagalyzer_sim as sim;
pub use lagalyzer_trace as trace;
pub use lagalyzer_viz as viz;
